//! End-to-end single-link simulation: projector → pool → node → pool →
//! hydrophone → decoder. This is the machinery behind Figs. 2, 7 and 8.

use crate::node::{IncidentComponent, NodeOutput, PabNode};
use crate::projector::Projector;
use crate::receiver::{Decoded, Receiver};
use crate::scratch::{self, Scratch};
use crate::{margin_samples, CoreError, DEFAULT_SAMPLE_RATE_HZ};
use pab_channel::noise::{add_awgn, NoiseEnvironment};
use pab_channel::{FaultSchedule, Pool, Position};
use pab_mcu::Clock;
use pab_net::packet::{Command, DownlinkQuery, SensorKind, UplinkPacket};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Configuration of one link experiment.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// The tank.
    pub pool: Pool,
    /// Projector position.
    pub projector_pos: Position,
    /// Node position.
    pub node_pos: Position,
    /// Hydrophone position.
    pub hydrophone_pos: Position,
    /// Downlink carrier, Hz.
    pub carrier_hz: f64,
    /// Projector drive voltage amplitude, volts.
    pub drive_voltage_v: f64,
    /// Target uplink bitrate (quantized to the MCU divider grid), bps.
    pub bitrate_target_bps: f64,
    /// Recto-piezo match frequency, Hz.
    pub f_match_hz: f64,
    /// Node address.
    pub node_addr: u8,
    /// Image-method reflection order.
    pub max_reflections: usize,
    /// Ambient noise.
    pub noise: NoiseEnvironment,
    /// Extra multiplier on the ambient noise sigma (lets experiments sweep
    /// SNR without changing the environment model).
    // lint: unitless multiplier on ambient noise sigma
    pub noise_scale: f64,
    /// RNG seed (noise realisation).
    pub seed: u64,
    /// Sample rate, Hz.
    pub fs_hz: f64,
    /// Water conditions for the node's sensors.
    pub water: pab_sensors::WaterSample,
    /// Battery-assisted node (bypasses the harvesting power-up threshold;
    /// §1's future-work hybrid design).
    pub battery_assisted: bool,
    /// Extra selectable recto-piezo match frequencies on the node
    /// (§3.3.2's multi-matching-circuit extension; select over the air
    /// with `Command::SelectRectoPiezo`).
    pub extra_match_hz: Vec<f64>,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            pool: Pool::pool_a(),
            projector_pos: Position::new(0.5, 1.5, 0.6),
            node_pos: Position::new(1.5, 1.5, 0.6),
            hydrophone_pos: Position::new(1.0, 1.2, 0.6),
            carrier_hz: 15_000.0,
            drive_voltage_v: 100.0,
            bitrate_target_bps: 2_048.0,
            f_match_hz: 15_000.0,
            node_addr: 7,
            max_reflections: 3,
            noise: NoiseEnvironment::quiet_tank(),
            noise_scale: 1.0,
            seed: 1,
            fs_hz: DEFAULT_SAMPLE_RATE_HZ,
            water: pab_sensors::WaterSample::bench(),
            battery_assisted: false,
            extra_match_hz: Vec::new(),
        }
    }
}

/// What happened during one link exchange.
#[derive(Debug)]
pub struct LinkReport {
    /// Whether the decoded packet's CRC passed.
    pub crc_ok: bool,
    /// The decoded packet (when CRC passed).
    pub packet: Option<UplinkPacket>,
    /// Bit error rate against the expected packet bits.
    // lint: unitless bit error rate in [0, 1]
    pub ber: f64,
    /// Receiver-estimated SNR of the backscatter modulation, dB.
    pub snr_db: f64,
    /// Whether the receiver found a packet preamble at all. `false` is an
    /// *erasure* — the MAC-level signal that the node may be dead or
    /// browned out, as opposed to `crc_ok == false` with a preamble
    /// (noisy but alive).
    pub preamble_found: bool,
    /// Peak preamble correlation in [0, 1] (0.0 on erasure) — the margin
    /// the MAC's link-quality estimator consumes.
    // lint: unitless normalized correlation in [0, 1]
    pub preamble_corr: f64,
    /// Whether the node powered up.
    pub node_powered_up: bool,
    /// Node's peak rectified voltage, volts.
    pub node_rectified_v: f64,
    /// Quantized uplink bitrate actually used, bps.
    pub bitrate_bps: f64,
    /// The node's average power during the exchange, watts.
    pub node_power_w: f64,
    /// Receiver envelope (diagnostics / Fig. 2-style plots).
    pub envelope: Vec<f64>,
    /// Raw recorded voltage waveform at the hydrophone (diagnostics).
    pub received: Vec<f64>,
    /// Node-side output (diagnostics).
    pub node_output: NodeOutput,
}

/// The lean verdict of one slot exchange — everything the MAC and the
/// faultnet bookkeeping consume, none of [`LinkReport`]'s waveform
/// diagnostics. Produced by [`LinkSimulator::slot_exchange`], whose
/// steady state never materialises the diagnostic buffers at all.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotVerdict {
    /// Whether the decoded packet's CRC passed.
    pub crc_ok: bool,
    /// Whether the receiver found a packet preamble (`false` = erasure).
    pub preamble_found: bool,
    /// Peak preamble correlation in [0, 1] (0.0 on erasure).
    // lint: unitless normalized correlation in [0, 1]
    pub preamble_corr: f64,
    /// Receiver-estimated SNR of the backscatter modulation, dB.
    pub snr_db: f64,
    /// Whether the node powered up.
    pub node_powered_up: bool,
    /// Node's peak rectified voltage, volts.
    pub node_rectified_v: f64,
    /// The node's average power during the exchange, watts.
    pub node_power_w: f64,
    /// Quantized uplink bitrate actually used, bps.
    pub bitrate_bps: f64,
    /// Length of the exchange's received window in samples (duration =
    /// `exchange_samples / fs_hz`).
    pub exchange_samples: usize,
    /// The decoded packet (when CRC passed).
    pub packet: Option<UplinkPacket>,
}

impl SlotVerdict {
    fn from_report(report: LinkReport) -> Self {
        SlotVerdict {
            crc_ok: report.crc_ok,
            preamble_found: report.preamble_found,
            preamble_corr: report.preamble_corr,
            snr_db: report.snr_db,
            node_powered_up: report.node_powered_up,
            node_rectified_v: report.node_rectified_v,
            node_power_w: report.node_power_w,
            bitrate_bps: report.bitrate_bps,
            exchange_samples: report.received.len(),
            packet: report.packet,
        }
    }
}

/// Slot-engine cache and arena counters (see
/// [`LinkSimulator::slot_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotEngineStats {
    /// Query-waveform cache hits.
    pub wave_hits: u64,
    /// Query-waveform cache misses (synthesis ran).
    pub wave_misses: u64,
    /// Clean-exchange cache hits (projector/channel/node chain skipped).
    pub exchange_hits: u64,
    /// Clean-exchange cache misses (full chain ran, result stored).
    pub exchange_misses: u64,
    /// Exchanges that bypassed the cache because a fade window overlapped
    /// the exchange (per-sample gains make the waveform time-dependent).
    pub bypasses: u64,
    /// Heap allocations observed across the engine stage of the most
    /// recent cache-hit exchange (scratch take → AWGN → burst → volts
    /// scaling, decode excluded). Reads 0 unless a counting global
    /// allocator feeds [`scratch::ALLOC_PROBE`], and must stay 0 when one
    /// does — that is the zero-allocation claim `tests/slot_engine_alloc.rs`
    /// pins.
    pub engine_allocs_last: u64,
    /// Scratch-arena buffers handed out.
    pub scratch_takes: u64,
    /// Scratch-arena takes that had to allocate (cold pool).
    pub scratch_pool_misses: u64,
}

impl SlotEngineStats {
    /// Accumulate another simulator's counters, for network-level totals
    /// (`engine_allocs_last` takes the max — it is a high-water probe,
    /// not a count).
    pub fn merge(&mut self, other: &SlotEngineStats) {
        self.wave_hits += other.wave_hits;
        self.wave_misses += other.wave_misses;
        self.exchange_hits += other.exchange_hits;
        self.exchange_misses += other.exchange_misses;
        self.bypasses += other.bypasses;
        self.engine_allocs_last = self.engine_allocs_last.max(other.engine_allocs_last);
        self.scratch_takes += other.scratch_takes;
        self.scratch_pool_misses += other.scratch_pool_misses;
    }
}

/// Stable cache identity of a `Command` (the enum carries no explicit
/// discriminants, so spell the mapping out here).
fn command_key(command: Command) -> (u8, u16) {
    match command {
        Command::Ping => (0, 0),
        Command::SetBitrateDivider(d) => (1, d),
        Command::SelectRectoPiezo(i) => (2, u16::from(i)),
        Command::ReadSensor(SensorKind::Ph) => (3, 0),
        Command::ReadSensor(SensorKind::Temperature) => (3, 1),
        Command::ReadSensor(SensorKind::Pressure) => (3, 2),
    }
}

/// Query-waveform cache key: everything the synthesized downlink depends
/// on that can vary between exchanges — destination, *responding node
/// address*, command, the node's commanded FM0 divider (through the
/// response window length) and the projector oscillator offset in force
/// (static CFO + drift), as bits.
///
/// The responder address matters because `dest` alone does not identify
/// the exchange once broadcast queries exist: every node answers
/// `BROADCAST_ADDR`, so entries keyed on the destination only would alias
/// across responders the moment these caches are shared or a simulator is
/// re-addressed.
type WaveKey = (u8, u8, (u8, u16), u16, u64);

/// Clean-exchange cache key: the wave key plus whether the node is
/// browned out for the window (the two variants superpose different
/// signals at the hydrophone).
type ExchKey = (u8, u8, (u8, u16), u16, u64, bool);

/// One memoized clean exchange: the noiseless hydrophone pressure
/// waveform plus the node-side summary the verdict reports. Valid
/// whenever no fade window overlaps the exchange — outside fade windows
/// the schedule's gain is exactly 1.0, so the cached samples are bitwise
/// what the full chain would recompute.
#[derive(Debug)]
struct CachedExchange {
    y_clean: Vec<f64>,
    powered_up: bool,
    rectified_v: f64,
    power_w: f64,
}

/// Bound on each cache's entry count: past this the whole map is cleared
/// (drift ramps insert one entry per distinct offset; wholesale clearing
/// keeps the worst case bounded without LRU bookkeeping).
const CACHE_CAP: usize = 16;

/// The link simulator.
///
/// The three propagation channels (projector→node, projector→hydrophone,
/// node→hydrophone) depend only on the configuration, so they are built
/// once here and reused across every query — the image-method search is
/// pure overhead when repeated per packet in a Monte-Carlo sweep. The
/// same reasoning extends to the slot engine's caches: the query
/// waveform and the whole clean (fade-free) exchange are pure functions
/// of the cache keys above, so steady-state slots skip synthesis, both
/// propagation legs and the node's signal chain entirely.
#[derive(Debug)]
pub struct LinkSimulator {
    cfg: LinkConfig,
    projector: Projector,
    node: PabNode,
    receiver: Receiver,
    rng: ChaCha8Rng,
    ch_pn: pab_channel::MultipathChannel,
    ch_ph: pab_channel::MultipathChannel,
    ch_nh: pab_channel::MultipathChannel,
    /// Ambient noise sigma at the carrier (pure function of the config;
    /// hoisted out of the per-exchange path).
    sigma_pa: f64,
    slot_cache_enabled: bool,
    scratch: Scratch,
    wave_cache: BTreeMap<WaveKey, Arc<Vec<f64>>>,
    exch_cache: BTreeMap<ExchKey, CachedExchange>,
    incident_cache: BTreeMap<WaveKey, Arc<Vec<f64>>>,
    stats: SlotEngineStats,
}

impl LinkSimulator {
    /// Build the simulator, designing the node front end and the
    /// propagation channels.
    pub fn new(cfg: LinkConfig) -> Result<Self, CoreError> {
        let mut projector = Projector::new(cfg.drive_voltage_v)?;
        projector.fs_hz = cfg.fs_hz;
        let mut node = PabNode::new(cfg.node_addr, cfg.f_match_hz)?;
        for &f in &cfg.extra_match_hz {
            node = node.with_extra_frontend(f)?;
        }
        node.battery_assisted = cfg.battery_assisted;
        let divider = Clock::watch_crystal()
            .divider_for_bitrate(cfg.bitrate_target_bps)
            .map_err(CoreError::Mcu)?;
        node.default_divider = divider as u16;
        let receiver = Receiver::new(1.0e-3, cfg.fs_hz);
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let ch_pn = cfg.pool.channel(
            &cfg.projector_pos,
            &cfg.node_pos,
            cfg.max_reflections,
            cfg.carrier_hz,
        )?;
        let ch_ph = cfg.pool.channel(
            &cfg.projector_pos,
            &cfg.hydrophone_pos,
            cfg.max_reflections,
            cfg.carrier_hz,
        )?;
        let ch_nh = cfg.pool.channel(
            &cfg.node_pos,
            &cfg.hydrophone_pos,
            cfg.max_reflections,
            cfg.carrier_hz,
        )?;
        let sigma_pa = cfg.noise.rms_pressure_pa(cfg.carrier_hz, cfg.fs_hz / 2.0)?
            * cfg.noise_scale;
        Ok(LinkSimulator {
            cfg,
            projector,
            node,
            receiver,
            rng,
            ch_pn,
            ch_ph,
            ch_nh,
            sigma_pa,
            slot_cache_enabled: true,
            scratch: Scratch::new(),
            wave_cache: BTreeMap::new(),
            exch_cache: BTreeMap::new(),
            incident_cache: BTreeMap::new(),
            stats: SlotEngineStats::default(),
        })
    }

    /// Enable or disable the slot engine's waveform/exchange caches
    /// ([`slot_exchange`](Self::slot_exchange) falls back to the full
    /// per-exchange computation when disabled). On by default; the off
    /// switch exists so the bitwise cached-vs-uncached regression tests
    /// can compare both paths.
    pub fn set_slot_cache(&mut self, enabled: bool) {
        self.slot_cache_enabled = enabled;
        if !enabled {
            self.wave_cache.clear();
            self.exch_cache.clear();
            self.incident_cache.clear();
        }
    }

    /// Slot-engine cache and arena counters (diagnostics; the allocation
    /// test's evidence).
    pub fn slot_stats(&self) -> SlotEngineStats {
        SlotEngineStats {
            scratch_takes: self.scratch.takes(),
            scratch_pool_misses: self.scratch.pool_misses(),
            ..self.stats
        }
    }

    /// The receiver's decimating front-end counters (fused
    /// mix→filter→decimate work, MACs saved, design cache hits).
    pub fn frontend_stats(&self) -> crate::receiver::FrontEndStats {
        self.receiver.frontend_stats()
    }

    /// The configuration in use.
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// Mutable access to the node (tune thresholds, add front ends).
    pub fn node_mut(&mut self) -> &mut PabNode {
        &mut self.node
    }

    /// Mutable access to the projector (PWM timing, CFO).
    pub fn projector_mut(&mut self) -> &mut Projector {
        &mut self.projector
    }

    /// The quantized bitrate the node will use.
    pub fn bitrate_bps(&self) -> f64 {
        Clock::watch_crystal()
            .bitrate_for_divider(self.node.default_divider as u64)
            // lint: allow(no-unwrap-in-lib) default_divider is validated non-zero at construction
            .expect("divider >= 1")
    }

    /// Retune the node's uplink bitrate to the nearest watch-crystal
    /// divider (the rate-ladder actuation path: the coordinator commands
    /// a slower FM0 rate, the node reprograms its divider).
    pub fn set_bitrate_target(&mut self, bitrate_bps: f64) -> Result<(), CoreError> {
        let divider = Clock::watch_crystal()
            .divider_for_bitrate(bitrate_bps)
            .map_err(CoreError::Mcu)?;
        self.node.default_divider = divider as u16;
        Ok(())
    }

    /// Expected response duration for a query, seconds.
    fn response_window_s(&self, payload_len: usize) -> f64 {
        let bits = UplinkPacket::bits_len(payload_len) as f64;
        // guard + packet + margin
        5e-3 + bits / self.bitrate_bps() + 30e-3
    }

    /// Run one query/response exchange with an arbitrary command,
    /// addressed to the configured node.
    pub fn run_query(&mut self, command: Command) -> Result<LinkReport, CoreError> {
        self.run_query_to(self.cfg.node_addr, command)
    }

    /// Run one query/response exchange addressed to `dest`.
    pub fn run_query_to(
        &mut self,
        dest: u8,
        command: Command,
    ) -> Result<LinkReport, CoreError> {
        let payload_len = match command {
            Command::ReadSensor(_) => 4,
            _ => 0,
        };
        let query = DownlinkQuery { dest, command };
        let cw_tail = self.response_window_s(payload_len);
        let (tx_wave, _query_end) =
            self.projector
                .query_waveform(&query, self.cfg.carrier_hz, cw_tail)?;

        // Propagate to the node over the cached channel.
        let incident = self.ch_pn.apply(&tx_wave, self.cfg.fs_hz);
        let node_out = self.node.process(
            &[IncidentComponent {
                carrier_hz: self.cfg.carrier_hz,
                samples: incident,
            }],
            self.cfg.fs_hz,
            Some(self.cfg.water),
        )?;

        // Superpose the direct projector path and the node's backscatter
        // at the hydrophone.
        let margin = margin_samples(self.cfg.fs_hz)?;
        let n_rx = node_out.backscatter[0].len() + margin;
        let mut y = vec![0.0; n_rx];
        self.ch_ph.apply_into(&mut y, &tx_wave, self.cfg.fs_hz);
        self.ch_nh
            .apply_into(&mut y, &node_out.backscatter[0], self.cfg.fs_hz);

        // Ambient noise.
        add_awgn(&mut y, self.sigma_pa, &mut self.rng);

        let recorded = self.receiver.record(&y);
        let bitrate = self.bitrate_bps();
        let decoded = self
            .receiver
            .decode_uplink(&recorded, self.cfg.carrier_hz, bitrate);
        Ok(self.build_report(command, node_out, decoded, bitrate, recorded))
    }

    /// Run one query/response exchange addressed to `dest` with a
    /// [`FaultSchedule`](pab_channel::FaultSchedule) applied at the sample
    /// level, the exchange starting at absolute simulation time
    /// `t_start_s`:
    ///
    /// * **drift** offsets the projector's oscillator for the exchange
    ///   (restored afterwards), on top of any configured static CFO;
    /// * **fades** scale the node's path gain per sample, on both the
    ///   downlink (projector→node) and uplink (node→hydrophone) legs —
    ///   the direct projector→hydrophone path is geometry the fade does
    ///   not model and stays clean;
    /// * **dropouts** brown the node out: it neither decodes nor
    ///   backscatters if the window overlaps the exchange;
    /// * **bursts** add broadband noise at the hydrophone after ambient
    ///   AWGN, keyed on absolute sample index so same-seed runs are
    ///   bit-identical however slots are scheduled.
    pub fn run_query_to_faulted(
        &mut self,
        dest: u8,
        command: Command,
        faults: &pab_channel::FaultSchedule,
        t_start_s: f64,
    ) -> Result<LinkReport, CoreError> {
        self.run_query_to_faulted_traced(dest, command, faults, t_start_s, None)
    }

    /// Like [`run_query_to_faulted`](Self::run_query_to_faulted), but
    /// sinking the receiver's aggregate verdict (detection / CRC-fail /
    /// erasure counters, correlation and SNR histograms) into an optional
    /// telemetry recorder via
    /// [`Receiver::decode_uplink_traced`](crate::receiver::Receiver::decode_uplink_traced).
    pub fn run_query_to_faulted_traced(
        &mut self,
        dest: u8,
        command: Command,
        faults: &pab_channel::FaultSchedule,
        t_start_s: f64,
        tel: Option<&mut pab_telemetry::Recorder>,
    ) -> Result<LinkReport, CoreError> {
        let fs_hz = self.cfg.fs_hz;
        let payload_len = match command {
            Command::ReadSensor(_) => 4,
            _ => 0,
        };
        let query = DownlinkQuery { dest, command };
        let cw_tail = self.response_window_s(payload_len);

        let drift_hz = faults.drift_at_hz(t_start_s);
        let saved_cfo_hz = self.projector.cfo_hz;
        self.projector.cfo_hz += drift_hz;
        let wave = self
            .projector
            .query_waveform(&query, self.cfg.carrier_hz, cw_tail);
        self.projector.cfo_hz = saved_cfo_hz;
        let (tx_wave, _query_end) = wave?;
        let incident = self.ch_pn.apply(&tx_wave, fs_hz);
        self.faulted_tail(command, faults, t_start_s, tel, &tx_wave, incident)
    }

    /// The faulted exchange chain downstream of query synthesis and the
    /// clean downlink propagation: fade gains, node (or brown-out),
    /// uplink superposition, noise, decode. Split out so the slot
    /// engine's fade-bypass path can reuse the memoized query waveform
    /// and clean incident instead of recomputing them — the arithmetic
    /// from here on is identical either way.
    fn faulted_tail(
        &mut self,
        command: Command,
        faults: &pab_channel::FaultSchedule,
        t_start_s: f64,
        tel: Option<&mut pab_telemetry::Recorder>,
        tx_wave: &[f64],
        mut incident: Vec<f64>,
    ) -> Result<LinkReport, CoreError> {
        let fs_hz = self.cfg.fs_hz;
        // Downlink leg, with the fade's time-varying gain on the node path.
        if !faults.is_quiet() {
            for (i, s) in incident.iter_mut().enumerate() {
                *s *= faults.gain_at(t_start_s + i as f64 / fs_hz);
            }
        }

        // A brown-out anywhere in the exchange silences the node: it
        // cannot hold charge through the window, so nothing decodes and
        // nothing backscatters (the receiver will report an erasure).
        let window_s = tx_wave.len() as f64 / fs_hz;
        let node_out = if faults.node_down_during(t_start_s, t_start_s + window_s) {
            NodeOutput {
                powered_up: false,
                rectified_v: 0.0,
                switch_wave: vec![false; incident.len()],
                backscatter: vec![vec![0.0; incident.len()]],
                powered_at_s: None,
                decoded_query: None,
                responses_sent: 0,
                bitrate_bps: self.bitrate_bps(),
                average_power_w: 0.0,
            }
        } else {
            self.node.process(
                &[IncidentComponent {
                    carrier_hz: self.cfg.carrier_hz,
                    samples: incident,
                }],
                fs_hz,
                Some(self.cfg.water),
            )?
        };

        // Uplink leg: fade the backscatter source, then superpose with the
        // clean direct path at the hydrophone.
        let mut backscatter = node_out.backscatter[0].clone();
        if !faults.is_quiet() {
            for (i, s) in backscatter.iter_mut().enumerate() {
                *s *= faults.gain_at(t_start_s + i as f64 / fs_hz);
            }
        }
        let margin = margin_samples(fs_hz)?;
        let n_rx = backscatter.len() + margin;
        let mut y = vec![0.0; n_rx];
        self.ch_ph.apply_into(&mut y, &tx_wave, fs_hz);
        self.ch_nh.apply_into(&mut y, &backscatter, fs_hz);

        add_awgn(&mut y, self.sigma_pa, &mut self.rng);
        faults.add_burst_noise(&mut y, t_start_s, fs_hz);

        let recorded = self.receiver.record(&y);
        let bitrate = self.bitrate_bps();
        let decoded =
            self.receiver
                .decode_uplink_traced(&recorded, self.cfg.carrier_hz, bitrate, tel);
        Ok(self.build_report(command, node_out, decoded, bitrate, recorded))
    }

    /// Run one fault-scheduled slot exchange through the caching slot
    /// engine, returning the lean [`SlotVerdict`] instead of a full
    /// [`LinkReport`].
    ///
    /// Semantics are identical to
    /// [`run_query_to_faulted_traced`](Self::run_query_to_faulted_traced)
    /// — bitwise, including the RNG stream (ambient noise draws exactly
    /// `exchange_samples` normals either way) — but the steady state is
    /// radically cheaper:
    ///
    /// * the **query waveform** is memoized on `(dest, responder address,
    ///   command, divider, oscillator offset)`, so synthesis runs once per
    ///   distinct key. The responder address is part of the key because a
    ///   broadcast `dest` is answered by *every* node — keying on the
    ///   destination alone would let broadcast exchanges alias across
    ///   responders;
    /// * the whole **clean exchange** (downlink propagation → node →
    ///   uplink superposition at the hydrophone, before noise) is
    ///   memoized on the same key plus the brown-out flag. Outside fade
    ///   windows the fault gain is exactly 1.0 and multiplying by 1.0 is
    ///   the identity on every `f64`, so the memo stays valid under any
    ///   schedule whose fade windows miss the exchange; fade-overlapped
    ///   exchanges bypass the cache and run the full chain. Drift ramps
    ///   participate through the key (the offset in force at the
    ///   exchange start), hitting once a clamped ramp saturates.
    /// * On a cache hit, the only per-exchange work before decoding is a
    ///   scratch-arena copy of the memoized waveform, in-place AWGN and
    ///   burst noise, and the in-place pressure→volts scaling — zero
    ///   heap allocations, pinned by `tests/slot_engine_alloc.rs`.
    ///
    /// AWGN is drawn fresh per exchange (never cached), so cached and
    /// uncached runs consume identical RNG streams and produce identical
    /// verdicts.
    pub fn slot_exchange(
        &mut self,
        dest: u8,
        command: Command,
        faults: &FaultSchedule,
        t_start_s: f64,
        tel: Option<&mut pab_telemetry::Recorder>,
    ) -> Result<SlotVerdict, CoreError> {
        let fs_hz = self.cfg.fs_hz;
        if !self.slot_cache_enabled {
            let report =
                self.run_query_to_faulted_traced(dest, command, faults, t_start_s, tel)?;
            return Ok(SlotVerdict::from_report(report));
        }

        let payload_len = match command {
            Command::ReadSensor(_) => 4,
            _ => 0,
        };
        let cw_tail = self.response_window_s(payload_len);
        let cfo_hz = self.projector.cfo_hz + faults.drift_at_hz(t_start_s);
        let divider = self.node.default_divider;
        let ck = command_key(command);
        let wkey: WaveKey = (dest, self.cfg.node_addr, ck, divider, cfo_hz.to_bits());

        let tx_wave: Arc<Vec<f64>> = match self.wave_cache.get(&wkey) {
            Some(w) => {
                self.stats.wave_hits += 1;
                Arc::clone(w)
            }
            None => {
                self.stats.wave_misses += 1;
                let saved_cfo_hz = self.projector.cfo_hz;
                self.projector.cfo_hz = cfo_hz;
                let wave = self.projector.query_waveform(
                    &DownlinkQuery { dest, command },
                    self.cfg.carrier_hz,
                    cw_tail,
                );
                self.projector.cfo_hz = saved_cfo_hz;
                let (w, _query_end) = wave?;
                let w = Arc::new(w);
                if self.wave_cache.len() >= CACHE_CAP {
                    self.wave_cache.clear();
                }
                self.wave_cache.insert(wkey, Arc::clone(&w));
                w
            }
        };

        let window_s = tx_wave.len() as f64 / fs_hz;
        let down = faults.node_down_during(t_start_s, t_start_s + window_s);
        if faults.fade_active_during(t_start_s, t_start_s + window_s) {
            // Per-sample fade gains make the exchange time-dependent, so
            // the post-node chain must run in full — but the query
            // waveform above and the clean downlink propagation are still
            // pure functions of the wave key, so reuse both and only pay
            // for the fade-dependent stages.
            self.stats.bypasses += 1;
            let incident: Arc<Vec<f64>> = match self.incident_cache.get(&wkey) {
                Some(v) => Arc::clone(v),
                None => {
                    let v = Arc::new(self.ch_pn.apply(&tx_wave, fs_hz));
                    if self.incident_cache.len() >= CACHE_CAP {
                        self.incident_cache.clear();
                    }
                    self.incident_cache.insert(wkey, Arc::clone(&v));
                    v
                }
            };
            let report = self.faulted_tail(
                command,
                faults,
                t_start_s,
                tel,
                &tx_wave,
                incident.as_ref().clone(),
            )?;
            return Ok(SlotVerdict::from_report(report));
        }

        let ekey: ExchKey = (dest, self.cfg.node_addr, ck, divider, cfo_hz.to_bits(), down);
        if !self.exch_cache.contains_key(&ekey) {
            self.stats.exchange_misses += 1;
            let entry = self.compute_clean_exchange(&tx_wave, down)?;
            if self.exch_cache.len() >= CACHE_CAP {
                self.exch_cache.clear();
            }
            self.exch_cache.insert(ekey, entry);
        } else {
            self.stats.exchange_hits += 1;
        }

        let bitrate = self.bitrate_bps();

        // ---- engine+decode stage: zero heap allocations once the
        // scratch arena, the receiver's decode scratch and its front-end
        // design cache are warm (untraced; the telemetry recorder may
        // grow its own tables). Pinned by `tests/slot_engine_alloc.rs`.
        let probe0 = scratch::alloc_probe();
        let (mut y, powered_up, rectified_v, power_w) = {
            let (cache, pool) = (&self.exch_cache, &mut self.scratch);
            // lint: allow(no-unwrap-in-lib) inserted above under the same key
            let entry = cache.get(&ekey).expect("exchange entry just ensured");
            let mut y = pool.take(entry.y_clean.len());
            y.copy_from_slice(&entry.y_clean);
            (y, entry.powered_up, entry.rectified_v, entry.power_w)
        };
        add_awgn(&mut y, self.sigma_pa, &mut self.rng);
        faults.add_burst_noise(&mut y, t_start_s, fs_hz);
        // Receiver::record, in place: the hydrophone scaling is a pure
        // per-sample multiply.
        let sensitivity = self.receiver.sensitivity_v_per_pa;
        for s in y.iter_mut() {
            *s *= sensitivity;
        }
        let decoded = self
            .receiver
            .decode_uplink_verdict_traced(&y, self.cfg.carrier_hz, bitrate, tel);
        let exchange_samples = y.len();
        self.scratch.put(y);
        self.stats.engine_allocs_last = scratch::alloc_probe().saturating_sub(probe0);
        // ---- end engine+decode stage.

        Ok(match decoded {
            Ok(d) => SlotVerdict {
                crc_ok: d.packet.is_ok(),
                preamble_found: true,
                preamble_corr: d.preamble_corr,
                snr_db: d.snr_db,
                node_powered_up: powered_up,
                node_rectified_v: rectified_v,
                node_power_w: power_w,
                bitrate_bps: bitrate,
                exchange_samples,
                packet: d.packet.ok(),
            },
            Err(_) => SlotVerdict {
                crc_ok: false,
                preamble_found: false,
                preamble_corr: 0.0,
                snr_db: f64::NEG_INFINITY,
                node_powered_up: powered_up,
                node_rectified_v: rectified_v,
                node_power_w: power_w,
                bitrate_bps: bitrate,
                exchange_samples,
                packet: None,
            },
        })
    }

    /// The fade-free exchange chain for one cache key: downlink
    /// propagation, node processing (or the browned-out zero response)
    /// and the noiseless superposition at the hydrophone. Bitwise what
    /// [`run_query_to_faulted_traced`](Self::run_query_to_faulted_traced)
    /// computes for the same inputs when no fade window overlaps — the
    /// gain multiplies it would apply are all by exactly 1.0.
    fn compute_clean_exchange(
        &mut self,
        tx_wave: &[f64],
        down: bool,
    ) -> Result<CachedExchange, CoreError> {
        let fs_hz = self.cfg.fs_hz;
        let margin = margin_samples(fs_hz)?;
        let incident_len = self.ch_pn.output_len(tx_wave.len(), fs_hz);
        if down {
            // The browned-out node backscatters silence; only the direct
            // projector→hydrophone path reaches the receiver. (The full
            // path superposes an all-zero backscatter buffer; replicate
            // that exactly, signed zeros included.)
            let zeros = vec![0.0; incident_len];
            let mut y = vec![0.0; incident_len + margin];
            self.ch_ph.apply_into(&mut y, tx_wave, fs_hz);
            self.ch_nh.apply_into(&mut y, &zeros, fs_hz);
            return Ok(CachedExchange {
                y_clean: y,
                powered_up: false,
                rectified_v: 0.0,
                power_w: 0.0,
            });
        }
        let incident = self.ch_pn.apply(tx_wave, fs_hz);
        let node_out = self.node.process(
            &[IncidentComponent {
                carrier_hz: self.cfg.carrier_hz,
                samples: incident,
            }],
            fs_hz,
            Some(self.cfg.water),
        )?;
        let mut y = vec![0.0; node_out.backscatter[0].len() + margin];
        self.ch_ph.apply_into(&mut y, tx_wave, fs_hz);
        self.ch_nh
            .apply_into(&mut y, &node_out.backscatter[0], fs_hz);
        Ok(CachedExchange {
            y_clean: y,
            powered_up: node_out.powered_up,
            rectified_v: node_out.rectified_v,
            power_w: node_out.average_power_w,
        })
    }

    fn build_report(
        &self,
        command: Command,
        node_out: NodeOutput,
        decoded: Result<Decoded, CoreError>,
        bitrate: f64,
        received: Vec<f64>,
    ) -> LinkReport {
        // What the node should have sent (the simulation knows the water
        // truth, so it can reconstruct the expected packet bits).
        let expected_bits: Option<Vec<bool>> = node_out.decoded_query.and_then(|_q| {
            let kind = match command {
                Command::ReadSensor(k) => Some(k),
                _ => None,
            };
            match kind {
                Some(SensorKind::Ph) => None, // exact ADC value is quantized; skip
                _ => None,
            }
        });
        match decoded {
            Ok(d) => {
                let crc_ok = d.packet.is_ok();
                let packet = d.packet.ok();
                let ber = match (&expected_bits, crc_ok) {
                    (_, true) => 0.0,
                    (Some(exp), false) => {
                        let n = exp.len().min(d.bits.len());
                        if n == 0 {
                            1.0
                        } else {
                            pab_net::bits::hamming_distance(&exp[..n], &d.bits[..n]) as f64
                                / n as f64
                        }
                    }
                    (None, false) => f64::NAN,
                };
                LinkReport {
                    crc_ok,
                    packet,
                    ber,
                    snr_db: d.snr_db,
                    preamble_found: true,
                    preamble_corr: d.preamble_corr,
                    node_powered_up: node_out.powered_up,
                    node_rectified_v: node_out.rectified_v,
                    bitrate_bps: bitrate,
                    node_power_w: node_out.average_power_w,
                    envelope: d.envelope,
                    received,
                    node_output: node_out,
                }
            }
            Err(_) => LinkReport {
                crc_ok: false,
                packet: None,
                ber: f64::NAN,
                snr_db: f64::NEG_INFINITY,
                preamble_found: false,
                preamble_corr: 0.0,
                node_powered_up: node_out.powered_up,
                node_rectified_v: node_out.rectified_v,
                bitrate_bps: bitrate,
                node_power_w: node_out.average_power_w,
                envelope: Vec::new(),
                received,
                node_output: node_out,
            },
        }
    }

    /// Run a pH sensor query addressed to `addr` (the paper's flagship
    /// application). The simulator hosts a single node at
    /// `config().node_addr`; addressing anything else exercises the
    /// firmware's address filter and yields no response.
    pub fn run_sensor_query(&mut self, addr: u8) -> Result<LinkReport, CoreError> {
        self.run_query_to(addr, Command::ReadSensor(SensorKind::Ph))
    }

    /// Fig. 2 reproduction: CW downlink, node toggling every
    /// `half_period_s` starting `toggle_start_s` after the projector
    /// begins at `projector_start_s`. Returns the receiver's demodulated
    /// envelope over `total_s`.
    pub fn run_fig2(
        &mut self,
        total_s: f64,
        projector_start_s: f64,
        toggle_start_s: f64,
        half_period_s: f64,
    ) -> Result<Vec<f64>, CoreError> {
        let fs_hz = self.cfg.fs_hz;
        let n = (total_s * fs_hz).floor() as usize;
        let cw = self
            .projector
            .continuous_wave(self.cfg.carrier_hz, total_s - projector_start_s);
        let mut tx = vec![0.0; n];
        let off = (projector_start_s * fs_hz).floor() as usize;
        for (i, &s) in cw.iter().enumerate() {
            if off + i < n {
                tx[off + i] = s;
            }
        }
        let incident = self.ch_pn.apply(&tx, fs_hz);
        let comp = IncidentComponent {
            carrier_hz: self.cfg.carrier_hz,
            samples: incident,
        };
        let node_out =
            self.node
                .process_fixed_toggle(&comp, fs_hz, toggle_start_s, half_period_s)?;
        let mut y = vec![0.0; n];
        self.ch_ph.apply_into(&mut y, &tx, fs_hz);
        self.ch_nh
            .apply_into(&mut y, &node_out.backscatter[0], fs_hz);
        add_awgn(&mut y, self.sigma_pa, &mut self.rng);
        let recorded = self.receiver.record(&y);
        self.receiver
            .demodulate(&recorded, self.cfg.carrier_hz, 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_link_delivers_a_sensor_packet() {
        let mut sim = LinkSimulator::new(LinkConfig::default()).unwrap();
        let report = sim.run_sensor_query(7).unwrap();
        assert!(report.node_powered_up, "rect_v={}", report.node_rectified_v);
        assert!(report.crc_ok, "snr={} dB", report.snr_db);
        let packet = report.packet.unwrap();
        assert_eq!(packet.src, 7);
        let ph = packet.sensor_value().unwrap();
        // ADC quantization + Nernst-slope temperature mismatch allow a
        // small deviation around the true pH 7.
        assert!((ph - 7.0).abs() < 0.2, "ph={ph}");
    }

    #[test]
    fn ping_roundtrip() {
        let mut sim = LinkSimulator::new(LinkConfig::default()).unwrap();
        let report = sim.run_query(Command::Ping).unwrap();
        assert!(report.crc_ok);
        assert_eq!(
            report.packet.unwrap().kind,
            pab_net::packet::UplinkKind::Ack
        );
    }

    #[test]
    fn snr_is_positive_at_one_meter() {
        let mut sim = LinkSimulator::new(LinkConfig::default()).unwrap();
        let report = sim.run_query(Command::Ping).unwrap();
        assert!(report.snr_db > 5.0, "snr={}", report.snr_db);
    }

    #[test]
    fn heavy_noise_breaks_the_link() {
        let cfg = LinkConfig {
            noise_scale: 100_000.0,
            ..Default::default()
        };
        let mut sim = LinkSimulator::new(cfg).unwrap();
        let report = sim.run_query(Command::Ping).unwrap();
        assert!(!report.crc_ok);
    }

    #[test]
    fn weak_drive_fails_to_power_node() {
        let cfg = LinkConfig {
            drive_voltage_v: 1.0,
            ..Default::default()
        };
        let mut sim = LinkSimulator::new(cfg).unwrap();
        let report = sim.run_query(Command::Ping).unwrap();
        assert!(!report.node_powered_up);
        assert!(!report.crc_ok);
    }

    #[test]
    fn fig2_envelope_shows_projector_then_backscatter() {
        let mut sim = LinkSimulator::new(LinkConfig::default()).unwrap();
        let env = sim.run_fig2(1.2, 0.2, 0.6, 0.1).unwrap();
        let fs_hz = sim.config().fs_hz;
        // Quiet before the projector starts.
        let before = pab_dsp::stats::mean(&env[..(0.15 * fs_hz) as usize]);
        // Constant after the projector is on but before backscatter.
        let during_cw = pab_dsp::stats::mean(&env[(0.3 * fs_hz) as usize..(0.55 * fs_hz) as usize]);
        assert!(during_cw > 10.0 * before.max(1e-12));
        // Alternation after backscatter begins: std dev rises.
        let bs_region = &env[(0.65 * fs_hz) as usize..(1.15 * fs_hz) as usize];
        let cw_region = &env[(0.3 * fs_hz) as usize..(0.55 * fs_hz) as usize];
        assert!(
            pab_dsp::stats::std_dev(bs_region) > 3.0 * pab_dsp::stats::std_dev(cw_region),
            "bs std {} vs cw std {}",
            pab_dsp::stats::std_dev(bs_region),
            pab_dsp::stats::std_dev(cw_region)
        );
    }

    #[test]
    fn link_survives_projector_cfo() {
        // Footnote 12: the projector and hydrophone run on different
        // oscillators. A 40 Hz offset on a 15 kHz carrier must still
        // decode thanks to the receiver's CFO estimation.
        let mut sim = LinkSimulator::new(LinkConfig::default()).unwrap();
        sim.projector_mut().cfo_hz = 40.0;
        let report = sim.run_query(Command::Ping).unwrap();
        assert!(report.crc_ok, "CFO broke the link (snr {})", report.snr_db);
    }

    #[test]
    fn run_query_to_other_address_gets_no_response() {
        let mut sim = LinkSimulator::new(LinkConfig::default()).unwrap();
        let report = sim.run_query_to(99, Command::Ping).unwrap();
        assert_eq!(report.node_output.responses_sent, 0);
        assert!(!report.crc_ok);
    }

    #[test]
    fn broadcast_slot_exchange_keys_the_cache_on_the_responder() {
        // Broadcast queries are answered by every node, so the slot-engine
        // cache key must carry the responder's address, not just `dest` —
        // otherwise two responders' broadcast exchanges share a key and a
        // cached entry from one would be replayed for the other. Regression
        // for the key including `node_addr`: each responder must decode its
        // *own* packet on both the cold (miss) and warm (hit) path.
        let faults = pab_channel::FaultSchedule::default();
        for addr in [7u8, 9] {
            let cfg = LinkConfig {
                node_addr: addr,
                ..Default::default()
            };
            let mut sim = LinkSimulator::new(cfg).unwrap();
            let cold = sim
                .slot_exchange(
                    pab_net::packet::BROADCAST_ADDR,
                    Command::Ping,
                    &faults,
                    0.0,
                    None,
                )
                .unwrap();
            let warm = sim
                .slot_exchange(
                    pab_net::packet::BROADCAST_ADDR,
                    Command::Ping,
                    &faults,
                    1.0,
                    None,
                )
                .unwrap();
            assert!(cold.crc_ok, "addr {addr}: cold broadcast exchange failed");
            assert!(warm.crc_ok, "addr {addr}: warm broadcast exchange failed");
            assert_eq!(cold.packet.unwrap().src, addr);
            assert_eq!(warm.packet.unwrap().src, addr);
            let stats = sim.slot_stats();
            assert_eq!(stats.wave_misses, 1, "addr {addr}: {stats:?}");
            assert_eq!(stats.wave_hits, 1, "addr {addr}: {stats:?}");
            assert_eq!(stats.exchange_hits, 1, "addr {addr}: {stats:?}");
        }
    }

    #[test]
    fn quiet_fault_schedule_changes_nothing() {
        let faults = pab_channel::FaultSchedule::default();
        let mut a = LinkSimulator::new(LinkConfig::default()).unwrap();
        let mut b = LinkSimulator::new(LinkConfig::default()).unwrap();
        let clean = a.run_query(Command::Ping).unwrap();
        let faulted = b
            .run_query_to_faulted(7, Command::Ping, &faults, 12.5)
            .unwrap();
        assert!(faulted.crc_ok);
        assert!(faulted.preamble_found);
        assert_eq!(clean.received, faulted.received, "bit-identical waveform");
    }

    #[test]
    fn dropout_window_produces_an_erasure() {
        let faults = pab_channel::FaultSchedule::new(3)
            .with_dropout(pab_channel::DropoutWindow {
                start_s: 10.0,
                duration_s: 60.0,
            })
            .unwrap();
        let mut sim = LinkSimulator::new(LinkConfig::default()).unwrap();
        // Inside the window: erasure (no preamble at all), not a CRC fail.
        let report = sim
            .run_query_to_faulted(7, Command::Ping, &faults, 30.0)
            .unwrap();
        assert!(!report.node_powered_up);
        assert!(!report.preamble_found, "brown-out must erase, corr={}", report.preamble_corr);
        // Outside the window the link is healthy again.
        let report = sim
            .run_query_to_faulted(7, Command::Ping, &faults, 80.0)
            .unwrap();
        assert!(report.crc_ok);
    }

    #[test]
    fn deep_fade_breaks_the_link_only_inside_the_window() {
        let faults = pab_channel::FaultSchedule::new(4)
            .with_fade(pab_channel::PathFade {
                start_s: 0.0,
                duration_s: 1000.0,
                floor_ratio: 1e-4,
            })
            .unwrap();
        let mut sim = LinkSimulator::new(LinkConfig::default()).unwrap();
        // Mid-fade (gain ~1e-4): the node cannot even power up.
        let report = sim
            .run_query_to_faulted(7, Command::Ping, &faults, 500.0)
            .unwrap();
        assert!(!report.crc_ok);
        // Past the fade: healthy.
        let report = sim
            .run_query_to_faulted(7, Command::Ping, &faults, 1500.0)
            .unwrap();
        assert!(report.crc_ok);
    }

    #[test]
    fn faulted_runs_are_bit_identical_across_invocations() {
        let faults = pab_channel::FaultSchedule::new(9)
            .with_burst(pab_channel::BroadbandBurst {
                start_s: 0.0,
                duration_s: 5.0,
                rms_pa: 0.05,
            })
            .unwrap();
        let run = || {
            let mut sim = LinkSimulator::new(LinkConfig::default()).unwrap();
            let r = sim
                .run_query_to_faulted(7, Command::Ping, &faults, 0.5)
                .unwrap();
            r.received
        };
        assert_eq!(run(), run(), "fault layer must honor the determinism contract");
    }

    #[test]
    fn bitrate_quantization_reported() {
        let cfg = LinkConfig {
            bitrate_target_bps: 3_000.0,
            ..Default::default()
        };
        let sim = LinkSimulator::new(cfg).unwrap();
        // 3000 bps quantizes to 32768/(2·6) = 2730.67.
        assert!((sim.bitrate_bps() - 2730.67).abs() < 0.1);
    }
}
