//! Concurrent multi-node networking: the Fig. 10 experiment.
//!
//! Two recto-piezo nodes (15 kHz- and 18 kHz-matched) share a tank. The
//! projector transmits a dual-frequency downlink; both nodes power up and
//! backscatter *both* carriers concurrently (backscatter is frequency-
//! agnostic, §3.3.2). The hydrophone demodulates each band, estimates the
//! 2×2 affine channel matrix from per-node training slots, and zero-forces
//! the collision. SINR is measured before and after projection.

use crate::collision::{
    aligned_sinr_db, condition_number_2x2_complex, estimate_channel_complex,
    naive_stream_estimate, zero_force_two_complex, ComplexAffineChannel,
};
use num_complex::Complex64;
use crate::node::{IncidentComponent, PabNode};
use crate::projector::Projector;
use crate::receiver::Receiver;
use crate::{CoreError, DEFAULT_SAMPLE_RATE_HZ};
use pab_channel::noise::{add_awgn, NoiseEnvironment};
use pab_channel::{MultipathChannel, Pool, Position};
use pab_mcu::Clock;
use pab_net::packet::{Command, DownlinkQuery};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration of the concurrent two-node experiment.
#[derive(Debug, Clone)]
pub struct ConcurrentConfig {
    /// The tank.
    pub pool: Pool,
    /// Projector position.
    pub projector_pos: Position,
    /// Position of the 15 kHz node.
    pub node1_pos: Position,
    /// Position of the 18 kHz node.
    pub node2_pos: Position,
    /// Hydrophone position.
    pub hydrophone_pos: Position,
    /// Channel-1 carrier (node 1's match), Hz.
    pub f1_hz: f64,
    /// Channel-2 carrier (node 2's match), Hz.
    pub f2_hz: f64,
    /// Projector drive voltage per carrier, volts.
    pub drive_voltage_v: f64,
    /// Target uplink bitrate, bps.
    pub bitrate_target_bps: f64,
    /// Image-method reflection order.
    pub max_reflections: usize,
    /// Ambient noise.
    pub noise: NoiseEnvironment,
    /// Noise sigma multiplier.
    // lint: unitless multiplier on ambient noise sigma
    pub noise_scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Sample rate, Hz.
    pub fs_hz: f64,
}

impl Default for ConcurrentConfig {
    fn default() -> Self {
        ConcurrentConfig {
            pool: Pool::pool_a(),
            projector_pos: Position::new(0.5, 1.5, 0.6),
            node1_pos: Position::new(1.6, 1.0, 0.6),
            node2_pos: Position::new(1.4, 2.0, 0.7),
            hydrophone_pos: Position::new(1.0, 1.5, 0.5),
            f1_hz: 15_000.0,
            f2_hz: 18_000.0,
            drive_voltage_v: 140.0,
            bitrate_target_bps: 1_024.0,
            max_reflections: 3,
            noise: NoiseEnvironment::quiet_tank(),
            noise_scale: 1.0,
            seed: 7,
            fs_hz: DEFAULT_SAMPLE_RATE_HZ,
        }
    }
}

/// Result of the concurrent experiment at one placement.
#[derive(Debug)]
pub struct ConcurrentReport {
    /// SINR of each stream before projection (naive per-band decoding), dB.
    pub sinr_before_db: [f64; 2],
    /// SINR after zero-forcing projection, dB.
    pub sinr_after_db: [f64; 2],
    /// Whether each node's concurrent packet decoded with a valid CRC.
    pub crc_ok: [bool; 2],
    /// Condition number of the estimated channel matrix.
    // lint: unitless condition number (ratio of singular values)
    pub condition_number: f64,
    /// Estimated complex affine channels (band-major).
    pub channels: [ComplexAffineChannel; 2],
}

/// First/last sample where either ground-truth stream is active, padded
/// by `pad` samples and clamped to `len`.
fn active_range(truths: &[Vec<f64>; 2], pad: usize, len: usize) -> (usize, usize) {
    let mut first = len;
    let mut last = 0;
    for s in truths {
        if let Some(i) = s.iter().position(|&v| v > 0.5) {
            first = first.min(i);
        }
        if let Some(i) = s.iter().rposition(|&v| v > 0.5) {
            last = last.max(i);
        }
    }
    if first >= last {
        return (0, len);
    }
    (first.saturating_sub(pad), (last + pad).min(len))
}

/// Everything one slot produced at the receiver.
struct SlotOutput {
    /// Complex baseband per band (coherent observation).
    baseband: [Vec<Complex64>; 2],
    /// Amplitude envelope per band (naive observation).
    envelopes: [Vec<f64>; 2],
    /// Ground-truth switching streams, hydrophone-aligned.
    truths: [Vec<f64>; 2],
    /// Whether each node sent a complete response.
    responded: [bool; 2],
}

/// The concurrent two-node simulator.
pub struct ConcurrentSimulator {
    cfg: ConcurrentConfig,
    projector: Projector,
    node1: PabNode,
    node2: PabNode,
    receiver: Receiver,
    rng: ChaCha8Rng,
    /// Projector→node channels, `[node][carrier]`, designed once.
    ch_proj_node: Vec<Vec<MultipathChannel>>,
    /// Projector→hydrophone channels per carrier.
    ch_proj_hydro: Vec<MultipathChannel>,
    /// Node→hydrophone channels, `[node][carrier]`.
    ch_node_hydro: Vec<Vec<MultipathChannel>>,
}

impl ConcurrentSimulator {
    /// Build the simulator (designs both recto-piezos and pre-computes the
    /// image-method channels: the geometry is fixed for the simulator's
    /// lifetime, so every slot reuses the same tap sets).
    pub fn new(cfg: ConcurrentConfig) -> Result<Self, CoreError> {
        let mut projector = Projector::new(cfg.drive_voltage_v)?;
        projector.fs_hz = cfg.fs_hz;
        let divider = Clock::watch_crystal()
            .divider_for_bitrate(cfg.bitrate_target_bps)
            .map_err(CoreError::Mcu)? as u16;
        let mut node1 = PabNode::new(1, cfg.f1_hz)?;
        node1.default_divider = divider;
        let mut node2 = PabNode::new(2, cfg.f2_hz)?;
        node2.default_divider = divider;
        let carriers = [cfg.f1_hz, cfg.f2_hz];
        let node_positions = [&cfg.node1_pos, &cfg.node2_pos];
        let mut ch_proj_node = Vec::with_capacity(2);
        let mut ch_node_hydro = Vec::with_capacity(2);
        for pos in node_positions {
            let mut down = Vec::with_capacity(2);
            let mut up = Vec::with_capacity(2);
            for f in carriers {
                down.push(cfg.pool.channel(&cfg.projector_pos, pos, cfg.max_reflections, f)?);
                up.push(cfg.pool.channel(pos, &cfg.hydrophone_pos, cfg.max_reflections, f)?);
            }
            ch_proj_node.push(down);
            ch_node_hydro.push(up);
        }
        let mut ch_proj_hydro = Vec::with_capacity(2);
        for f in carriers {
            ch_proj_hydro.push(cfg.pool.channel(
                &cfg.projector_pos,
                &cfg.hydrophone_pos,
                cfg.max_reflections,
                f,
            )?);
        }
        Ok(ConcurrentSimulator {
            projector,
            node1,
            node2,
            receiver: Receiver::new(1.0e-3, cfg.fs_hz),
            rng: ChaCha8Rng::seed_from_u64(cfg.seed),
            ch_proj_node,
            ch_proj_hydro,
            ch_node_hydro,
            cfg,
        })
    }

    /// Quantized uplink bitrate.
    pub fn bitrate_bps(&self) -> f64 {
        Clock::watch_crystal()
            .bitrate_for_divider(self.node1.default_divider as u64)
            // lint: allow(no-unwrap-in-lib) default_divider is validated non-zero at construction
            .expect("divider >= 1")
    }

    /// Run one *slot*: transmit per-carrier waveforms, run both nodes,
    /// return the two band envelopes at the hydrophone plus each node's
    /// ground-truth smoothed switching stream (time-aligned at the
    /// hydrophone via the direct node→hydrophone delay).
    #[allow(clippy::type_complexity)]
    fn run_slot(
        &mut self,
        w1: &[f64],
        w2: &[f64],
    ) -> Result<SlotOutput, CoreError> {
        let cfg = self.cfg.clone();
        let n_tx = w1.len().max(w2.len());
        let margin = (0.01 * cfg.fs_hz).floor() as usize;

        // Incident components at each node.
        let mut node_outs = Vec::new();
        for (ni, node) in [&self.node1, &self.node2].into_iter().enumerate() {
            let inc1 = self.ch_proj_node[ni][0].apply(w1, cfg.fs_hz);
            let inc2 = self.ch_proj_node[ni][1].apply(w2, cfg.fs_hz);
            let out = node.process(
                &[
                    IncidentComponent {
                        carrier_hz: cfg.f1_hz,
                        samples: inc1,
                    },
                    IncidentComponent {
                        carrier_hz: cfg.f2_hz,
                        samples: inc2,
                    },
                ],
                cfg.fs_hz,
                Some(pab_sensors::WaterSample::bench()),
            )?;
            node_outs.push(out);
        }

        // Superpose at the hydrophone.
        let n_rx = n_tx + 4 * margin;
        let mut y = vec![0.0; n_rx];
        self.ch_proj_hydro[0].apply_into(&mut y, w1, cfg.fs_hz);
        self.ch_proj_hydro[1].apply_into(&mut y, w2, cfg.fs_hz);
        let mut truths: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
        let mut responded = [false, false];
        for (i, out) in node_outs.iter().enumerate() {
            responded[i] = out.responses_sent > 0;
            // Each node re-radiates both carriers.
            for (k, ch) in self.ch_node_hydro[i].iter().enumerate() {
                ch.apply_into(&mut y, &out.backscatter[k], cfg.fs_hz);
            }
            // Ground-truth stream, delayed by the direct-path delay so it
            // aligns with the hydrophone's view.
            let delay =
                (self.ch_node_hydro[i][0].direct().delay_s * cfg.fs_hz).floor() as usize;
            let mut s = vec![0.0; n_rx];
            for (t, &b) in out.switch_wave.iter().enumerate() {
                if t + delay < n_rx {
                    s[t + delay] = if b { 1.0 } else { 0.0 };
                }
            }
            truths[i] = s;
        }

        let sigma = cfg.noise.rms_pressure_pa(cfg.f1_hz, cfg.fs_hz / 2.0)? * cfg.noise_scale;
        add_awgn(&mut y, sigma, &mut self.rng);
        let recorded = self.receiver.record(&y);

        let cutoff = (2.0 * self.bitrate_bps()).clamp(200.0, 0.4 * cfg.fs_hz);
        let bb1 = self.receiver.demodulate_complex(&recorded, cfg.f1_hz, cutoff)?;
        let bb2 = self.receiver.demodulate_complex(&recorded, cfg.f2_hz, cutoff)?;
        let env1: Vec<f64> = bb1.iter().map(|c| c.norm()).collect();
        let env2: Vec<f64> = bb2.iter().map(|c| c.norm()).collect();
        Ok(SlotOutput {
            baseband: [bb1, bb2],
            envelopes: [env1, env2],
            truths,
            responded,
        })
    }

    /// The full three-slot Fig. 10 procedure: train node 1, train node 2,
    /// then decode a genuine collision.
    pub fn run(&mut self) -> Result<ConcurrentReport, CoreError> {
        let cfg = self.cfg.clone();
        let bits_len = pab_net::packet::UplinkPacket::bits_len(0) as f64;
        let tail = 5e-3 + bits_len / self.bitrate_bps() + 40e-3;

        // Training slot for node 1: query node 1 at f1; f2 is CW so node
        // 2 stays powered but silent (the query is not addressed to it).
        let q1 = DownlinkQuery {
            dest: 1,
            command: Command::Ping,
        };
        let (w1, _) = self.projector.query_waveform(&q1, cfg.f1_hz, tail)?;
        let w2 = self.projector.continuous_wave(cfg.f2_hz, w1.len() as f64 / cfg.fs_hz);
        let slot_a = self.run_slot(&w1, &w2)?;
        if !slot_a.responded[0] {
            return Err(CoreError::NodeNotPoweredUp);
        }
        let pad = (0.005 * cfg.fs_hz).floor() as usize;
        let (a0, a1r) = active_range(
            &slot_a.truths,
            pad,
            slot_a.baseband[0].len().min(slot_a.baseband[1].len()),
        );
        let ch_a1 =
            estimate_channel_complex(&slot_a.baseband[0][a0..a1r], &[&slot_a.truths[0][a0..a1r]])?;
        let ch_a2 =
            estimate_channel_complex(&slot_a.baseband[1][a0..a1r], &[&slot_a.truths[0][a0..a1r]])?;

        // Training slot for node 2.
        let q2 = DownlinkQuery {
            dest: 2,
            command: Command::Ping,
        };
        let (w2b, _) = self.projector.query_waveform(&q2, cfg.f2_hz, tail)?;
        let w1b = self
            .projector
            .continuous_wave(cfg.f1_hz, w2b.len() as f64 / cfg.fs_hz);
        let slot_b = self.run_slot(&w1b, &w2b)?;
        if !slot_b.responded[1] {
            return Err(CoreError::NodeNotPoweredUp);
        }
        let (b0, b1r) = active_range(
            &slot_b.truths,
            pad,
            slot_b.baseband[0].len().min(slot_b.baseband[1].len()),
        );
        let ch_b1 =
            estimate_channel_complex(&slot_b.baseband[0][b0..b1r], &[&slot_b.truths[1][b0..b1r]])?;
        let ch_b2 =
            estimate_channel_complex(&slot_b.baseband[1][b0..b1r], &[&slot_b.truths[1][b0..b1r]])?;

        // Assemble the 2×2 complex affine channels (band-major).
        let channels = [
            ComplexAffineChannel {
                offset: (ch_a1.offset + ch_b1.offset) / 2.0,
                gains: vec![ch_a1.gains[0], ch_b1.gains[0]],
            },
            ComplexAffineChannel {
                offset: (ch_a2.offset + ch_b2.offset) / 2.0,
                gains: vec![ch_a2.gains[0], ch_b2.gains[0]],
            },
        ];

        // Collision slot: concurrent queries to both nodes.
        let (w1c, _) = self.projector.query_waveform(&q1, cfg.f1_hz, tail)?;
        let (w2c, _) = self.projector.query_waveform(&q2, cfg.f2_hz, tail)?;
        let slot_c = self.run_slot(&w1c, &w2c)?;
        if !slot_c.responded[0] || !slot_c.responded[1] {
            return Err(CoreError::NodeNotPoweredUp);
        }

        // Restrict to the region where the collision actually happens.
        let (c0, c1r) = active_range(
            &slot_c.truths,
            pad,
            slot_c.baseband[0].len().min(slot_c.baseband[1].len()),
        );
        let bb1 = slot_c.baseband[0][c0..c1r].to_vec();
        let bb2 = slot_c.baseband[1][c0..c1r].to_vec();
        let e1 = &slot_c.envelopes[0][c0..c1r];
        let e2 = &slot_c.envelopes[1][c0..c1r];
        let t1 = &slot_c.truths[0][c0..c1r];
        let t2 = &slot_c.truths[1][c0..c1r];

        // Before projection: naive per-band envelope decoding.
        let bitrate = self.bitrate_bps();
        let max_lag = (0.002 * cfg.fs_hz).floor() as usize;
        let before1 =
            aligned_sinr_db(&naive_stream_estimate(e1), t1, cfg.fs_hz, bitrate, max_lag);
        let before2 =
            aligned_sinr_db(&naive_stream_estimate(e2), t2, cfg.fs_hz, bitrate, max_lag);

        // Coherent zero-forcing and after-projection measurement.
        let [s1, s2] = zero_force_two_complex(&[bb1, bb2], &channels)?;
        let after1 = aligned_sinr_db(&s1, t1, cfg.fs_hz, bitrate, max_lag);
        let after2 = aligned_sinr_db(&s2, t2, cfg.fs_hz, bitrate, max_lag);

        // Try to decode the separated streams.
        let crc1 = self
            .receiver
            .decode_envelope(&s1, bitrate)
            .map(|d| d.packet.is_ok())
            .unwrap_or(false);
        let crc2 = self
            .receiver
            .decode_envelope(&s2, bitrate)
            .map(|d| d.packet.is_ok())
            .unwrap_or(false);

        Ok(ConcurrentReport {
            sinr_before_db: [before1, before2],
            sinr_after_db: [after1, after2],
            crc_ok: [crc1, crc2],
            condition_number: condition_number_2x2_complex(&channels),
            channels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_placement_decodes_collision() {
        let mut sim = ConcurrentSimulator::new(ConcurrentConfig::default()).unwrap();
        let report = sim.run().unwrap();
        // At a low-interference placement ZF mainly costs a little noise
        // enhancement; both packets must decode and SINR stays > 3 dB.
        for i in 0..2 {
            assert!(
                report.sinr_after_db[i] > 3.0,
                "stream {i} after-projection SINR {}",
                report.sinr_after_db[i]
            );
            assert!(
                report.sinr_after_db[i] > report.sinr_before_db[i] - 2.0,
                "ZF lost more than noise-enhancement margin"
            );
        }
        assert!(report.crc_ok[0], "node 1 collision packet failed");
        assert!(report.crc_ok[1], "node 2 collision packet failed");
        assert!(report.condition_number.is_finite());
    }

    #[test]
    fn projection_rescues_interference_heavy_placement() {
        // A placement where the naive per-band decoder sees SINR below
        // the paper's 3 dB line for one stream; zero-forcing must improve
        // it (the Fig. 10 story).
        let cfg = ConcurrentConfig {
            node1_pos: Position::new(1.0, 1.3, 0.6),
            node2_pos: Position::new(1.7, 1.8, 0.5),
            hydrophone_pos: Position::new(1.3, 2.0, 0.7),
            ..Default::default()
        };
        let mut sim = ConcurrentSimulator::new(cfg).unwrap();
        let report = sim.run().unwrap();
        let worst_before = report.sinr_before_db[0].min(report.sinr_before_db[1]);
        let worst_after = report.sinr_after_db[0].min(report.sinr_after_db[1]);
        assert!(
            worst_before < 3.0,
            "placement not interference-heavy: {worst_before}"
        );
        // Projection rescues the interference-limited stream (the clean
        // stream may pay a small noise-enhancement tax).
        assert!(
            worst_after > worst_before,
            "worst stream not improved: {worst_after} <= {worst_before}"
        );
        assert!(report.crc_ok[0] && report.crc_ok[1]);
    }
}
