//! N-node FDMA networking — the §8 scaling direction ("the gain from FDMA
//! scales as the number of nodes with different resonance frequencies
//! increases"), generalising the two-node Fig. 10 machinery in
//! [`crate::network`] to arbitrarily many recto-piezo channels.
//!
//! The procedure mirrors the two-node case: one training slot per node
//! (query it alone, CW illumination on every other carrier) to estimate
//! its complex gain into *every* band, then one collision slot where all
//! nodes answer concurrently and the N×N channel matrix is inverted.

use crate::collision::{
    aligned_sinr_db, condition_number_n, estimate_channel_complex, naive_stream_estimate,
    zero_force_n_complex, ComplexAffineChannel,
};
use crate::node::{IncidentComponent, PabNode};
use crate::projector::Projector;
use crate::receiver::Receiver;
use crate::{CoreError, DEFAULT_SAMPLE_RATE_HZ};
use num_complex::Complex64;
use pab_channel::noise::{add_awgn, NoiseEnvironment};
use pab_channel::{Pool, Position};
use pab_mcu::Clock;
use pab_net::packet::{Command, DownlinkQuery};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One node's slot in the FDMA plan.
#[derive(Debug, Clone)]
pub struct NodePlacement {
    /// Node address (also used as its identity in reports).
    pub addr: u8,
    /// Recto-piezo match frequency = its FDMA channel, Hz.
    pub carrier_hz: f64,
    /// Position in the pool.
    pub position: Position,
    /// Geometric (ceramic) resonance for this node, Hz. `None` uses the
    /// paper's standard ~16.5 kHz cylinder; setting it per node models
    /// differently sized ceramics (the §8 scaling remedy).
    pub ceramic_resonance_hz: Option<f64>,
}

/// Configuration of an N-node concurrent experiment.
#[derive(Debug, Clone)]
pub struct MultiNodeConfig {
    /// The tank.
    pub pool: Pool,
    /// Projector position.
    pub projector_pos: Position,
    /// Hydrophone position.
    pub hydrophone_pos: Position,
    /// The nodes (one per FDMA channel).
    pub nodes: Vec<NodePlacement>,
    /// Projector drive voltage per carrier, volts.
    pub drive_voltage_v: f64,
    /// Target uplink bitrate, bps.
    pub bitrate_target_bps: f64,
    /// Image-method reflection order.
    pub max_reflections: usize,
    /// Ambient noise.
    pub noise: NoiseEnvironment,
    /// Noise sigma multiplier.
    // lint: unitless multiplier on ambient noise sigma
    pub noise_scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Sample rate, Hz.
    pub fs_hz: f64,
}

impl Default for MultiNodeConfig {
    fn default() -> Self {
        MultiNodeConfig {
            pool: Pool::pool_a(),
            projector_pos: Position::new(0.5, 1.5, 0.6),
            hydrophone_pos: Position::new(1.3, 1.5, 0.7),
            nodes: vec![
                NodePlacement {
                    addr: 1,
                    carrier_hz: 12_500.0,
                    position: Position::new(1.6, 1.0, 0.6),
                    ceramic_resonance_hz: Some(13_000.0),
                },
                NodePlacement {
                    addr: 2,
                    carrier_hz: 15_500.0,
                    position: Position::new(1.4, 2.0, 0.7),
                    ceramic_resonance_hz: Some(16_000.0),
                },
                NodePlacement {
                    addr: 3,
                    carrier_hz: 19_000.0,
                    position: Position::new(1.8, 1.8, 0.6),
                    ceramic_resonance_hz: Some(19_500.0),
                },
            ],
            drive_voltage_v: 160.0,
            bitrate_target_bps: 1_024.0,
            max_reflections: 3,
            noise: NoiseEnvironment::quiet_tank(),
            noise_scale: 1.0,
            seed: 11,
            fs_hz: DEFAULT_SAMPLE_RATE_HZ,
        }
    }
}

/// Result of the N-node collision experiment.
#[derive(Debug)]
pub struct MultiNodeReport {
    /// Per-stream SINR before projection (naive per-band envelope), dB.
    pub sinr_before_db: Vec<f64>,
    /// Per-stream SINR after N×N zero-forcing, dB.
    pub sinr_after_db: Vec<f64>,
    /// Whether each node's concurrent packet decoded with a valid CRC.
    pub crc_ok: Vec<bool>,
    /// Condition number of the N×N channel matrix.
    // lint: unitless condition number (ratio of singular values)
    pub condition_number: f64,
    /// The estimated channels (band-major).
    pub channels: Vec<ComplexAffineChannel>,
    /// The zero-forced stream estimates from the collision slot
    /// (diagnostics / plotting).
    pub streams: Vec<Vec<f64>>,
}

struct SlotOutput {
    baseband: Vec<Vec<Complex64>>,
    envelopes: Vec<Vec<f64>>,
    truths: Vec<Vec<f64>>,
    responded: Vec<bool>,
}

/// The N-node simulator.
///
/// All k² propagation channels per hop are geometry-dependent only, so
/// they are built once at construction and reused across the (N+1) slots
/// of every run — the image-method search would otherwise be recomputed
/// k·(2k+1) times per run.
pub struct MultiNodeSimulator {
    cfg: MultiNodeConfig,
    projector: Projector,
    nodes: Vec<PabNode>,
    receiver: Receiver,
    rng: ChaCha8Rng,
    /// `[carrier]`: projector → hydrophone at that node's carrier.
    ch_proj_hydro: Vec<pab_channel::MultipathChannel>,
    /// `[node][carrier]`: projector → node at each carrier.
    ch_proj_node: Vec<Vec<pab_channel::MultipathChannel>>,
    /// `[node][carrier]`: node → hydrophone at each carrier.
    ch_node_hydro: Vec<Vec<pab_channel::MultipathChannel>>,
}

impl MultiNodeSimulator {
    /// Build the simulator, designing one recto-piezo per node.
    pub fn new(cfg: MultiNodeConfig) -> Result<Self, CoreError> {
        if cfg.nodes.is_empty() {
            return Err(CoreError::InvalidConfig("at least one node"));
        }
        let mut projector = Projector::new(cfg.drive_voltage_v)?;
        projector.fs_hz = cfg.fs_hz;
        let divider = Clock::watch_crystal()
            .divider_for_bitrate(cfg.bitrate_target_bps)
            .map_err(CoreError::Mcu)? as u16;
        let mut nodes = Vec::with_capacity(cfg.nodes.len());
        for p in &cfg.nodes {
            let mut n = match p.ceramic_resonance_hz {
                Some(f_res) => {
                    let t = pab_piezo::TransducerBuilder::new()
                        .resonance_hz(f_res)
                        .build()
                        .map_err(pab_analog::AnalogError::Piezo)
                        .map_err(CoreError::Analog)?;
                    PabNode::with_transducer(p.addr, t, p.carrier_hz)?
                }
                None => PabNode::new(p.addr, p.carrier_hz)?,
            };
            n.default_divider = divider;
            nodes.push(n);
        }
        let mut ch_proj_hydro = Vec::with_capacity(cfg.nodes.len());
        let mut ch_proj_node = Vec::with_capacity(cfg.nodes.len());
        let mut ch_node_hydro = Vec::with_capacity(cfg.nodes.len());
        for p in &cfg.nodes {
            ch_proj_hydro.push(cfg.pool.channel(
                &cfg.projector_pos,
                &cfg.hydrophone_pos,
                cfg.max_reflections,
                p.carrier_hz,
            )?);
        }
        for p in &cfg.nodes {
            let mut to_node = Vec::with_capacity(cfg.nodes.len());
            let mut to_hydro = Vec::with_capacity(cfg.nodes.len());
            for q in &cfg.nodes {
                to_node.push(cfg.pool.channel(
                    &cfg.projector_pos,
                    &p.position,
                    cfg.max_reflections,
                    q.carrier_hz,
                )?);
                to_hydro.push(cfg.pool.channel(
                    &p.position,
                    &cfg.hydrophone_pos,
                    cfg.max_reflections,
                    q.carrier_hz,
                )?);
            }
            ch_proj_node.push(to_node);
            ch_node_hydro.push(to_hydro);
        }
        Ok(MultiNodeSimulator {
            projector,
            nodes,
            receiver: Receiver::new(1.0e-3, cfg.fs_hz),
            rng: ChaCha8Rng::seed_from_u64(cfg.seed),
            cfg,
            ch_proj_hydro,
            ch_proj_node,
            ch_node_hydro,
        })
    }

    /// Quantized uplink bitrate.
    pub fn bitrate_bps(&self) -> f64 {
        Clock::watch_crystal()
            .bitrate_for_divider(self.nodes[0].default_divider as u64)
            // lint: allow(no-unwrap-in-lib) default_divider is validated non-zero at construction
            .expect("divider >= 1")
    }

    /// Run one slot given the per-carrier transmit waveforms.
    fn run_slot(&mut self, waves: &[Vec<f64>]) -> Result<SlotOutput, CoreError> {
        let cfg = self.cfg.clone();
        let k = cfg.nodes.len();
        let n_tx = waves.iter().map(Vec::len).max().unwrap_or(0);
        let margin = crate::margin_samples(cfg.fs_hz)?;
        let n_rx = n_tx + 4 * margin;

        let mut y = vec![0.0; n_rx];
        // Direct projector paths, all carriers (cached channels).
        for (i, w) in waves.iter().enumerate() {
            self.ch_proj_hydro[i].apply_into(&mut y, w, cfg.fs_hz);
        }

        let mut truths = vec![Vec::new(); k];
        let mut responded = vec![false; k];
        for (ni, (node, _place)) in self.nodes.iter().zip(&cfg.nodes).enumerate() {
            // Incident components at this node: every carrier.
            let mut components = Vec::with_capacity(k);
            for (ci, w) in waves.iter().enumerate() {
                components.push(IncidentComponent {
                    carrier_hz: cfg.nodes[ci].carrier_hz,
                    samples: self.ch_proj_node[ni][ci].apply(w, cfg.fs_hz),
                });
            }
            let out = node.process(&components, cfg.fs_hz, Some(pab_sensors::WaterSample::bench()))?;
            responded[ni] = out.responses_sent > 0;
            // Backscatter of every carrier into the hydrophone.
            for (ci, bs) in out.backscatter.iter().enumerate() {
                self.ch_node_hydro[ni][ci].apply_into(&mut y, bs, cfg.fs_hz);
            }
            // Hydrophone-aligned ground truth (own-carrier channel).
            let ch = &self.ch_node_hydro[ni][ni];
            let delay = (ch.direct().delay_s * cfg.fs_hz).floor() as usize;
            let mut s = vec![0.0; n_rx];
            for (t, &b) in out.switch_wave.iter().enumerate() {
                if t + delay < n_rx {
                    s[t + delay] = if b { 1.0 } else { 0.0 };
                }
            }
            truths[ni] = s;
        }

        let sigma = cfg
            .noise
            .rms_pressure_pa(cfg.nodes[0].carrier_hz, cfg.fs_hz / 2.0)?
            * cfg.noise_scale;
        add_awgn(&mut y, sigma, &mut self.rng);
        let recorded = self.receiver.record(&y);
        let cutoff = (2.0 * self.bitrate_bps()).clamp(200.0, 0.4 * cfg.fs_hz);
        let mut baseband = Vec::with_capacity(k);
        let mut envelopes = Vec::with_capacity(k);
        for place in &cfg.nodes {
            let bb = self
                .receiver
                .demodulate_complex(&recorded, place.carrier_hz, cutoff)?;
            envelopes.push(bb.iter().map(|c| c.norm()).collect());
            baseband.push(bb);
        }
        Ok(SlotOutput {
            baseband,
            envelopes,
            truths,
            responded,
        })
    }

    fn active_range(truths: &[Vec<f64>], pad: usize, len: usize) -> (usize, usize) {
        let mut first = len;
        let mut last = 0;
        for s in truths {
            if let Some(i) = s.iter().position(|&v| v > 0.5) {
                first = first.min(i);
            }
            if let Some(i) = s.iter().rposition(|&v| v > 0.5) {
                last = last.max(i);
            }
        }
        if first >= last {
            return (0, len);
        }
        (first.saturating_sub(pad), (last + pad).min(len))
    }

    /// The full (N+1)-slot procedure: one training slot per node, then
    /// the N-way collision slot.
    pub fn run(&mut self) -> Result<MultiNodeReport, CoreError> {
        let cfg = self.cfg.clone();
        let k = cfg.nodes.len();
        let bits_len = pab_net::packet::UplinkPacket::bits_len(0) as f64;
        let tail = 5e-3 + bits_len / self.bitrate_bps() + 40e-3;
        let pad = (0.005 * cfg.fs_hz).floor() as usize;

        // Per-node training: query node i, CW on every other carrier.
        // channels[band][stream] assembled from each training slot.
        let mut gains = vec![vec![Complex64::new(0.0, 0.0); k]; k];
        let mut offsets = vec![Complex64::new(0.0, 0.0); k];
        for i in 0..k {
            let q = DownlinkQuery {
                dest: cfg.nodes[i].addr,
                command: Command::Ping,
            };
            let (wq, _) = self
                .projector
                .query_waveform(&q, cfg.nodes[i].carrier_hz, tail)?;
            let dur = wq.len() as f64 / cfg.fs_hz;
            let waves: Vec<Vec<f64>> = (0..k)
                .map(|c| {
                    if c == i {
                        wq.clone()
                    } else {
                        self.projector.continuous_wave(cfg.nodes[c].carrier_hz, dur)
                    }
                })
                .collect();
            let slot = self.run_slot(&waves)?;
            if !slot.responded[i] {
                return Err(CoreError::NodeNotPoweredUp);
            }
            let len = slot.baseband.iter().map(Vec::len).min().unwrap_or(0);
            let (a0, a1) = Self::active_range(&slot.truths[i..=i], pad, len);
            for band in 0..k {
                let ch = estimate_channel_complex(
                    &slot.baseband[band][a0..a1],
                    &[&slot.truths[i][a0..a1]],
                )?;
                gains[band][i] = ch.gains[0];
                offsets[band] += ch.offset / k as f64;
            }
        }
        let channels: Vec<ComplexAffineChannel> = (0..k)
            .map(|band| ComplexAffineChannel {
                offset: offsets[band],
                gains: gains[band].clone(),
            })
            .collect();

        // Collision slot: one *broadcast* ping keyed identically on all
        // carriers — the paper's own Fig. 10 procedure ("transmits a
        // downlink signal at both frequencies"). Because every carrier
        // carries the same keying, each node's selectivity-weighted
        // envelope sees one clean PWM query regardless of how much it
        // hears of its neighbours' channels, and every node decodes and
        // answers at the same moment: a genuine N-way uplink collision.
        let broadcast = DownlinkQuery {
            dest: pab_net::packet::BROADCAST_ADDR,
            command: Command::Ping,
        };
        let waves: Vec<Vec<f64>> = (0..k)
            .map(|i| {
                self.projector
                    .query_waveform(&broadcast, cfg.nodes[i].carrier_hz, tail)
                    .map(|(w, _)| w)
            })
            .collect::<Result<_, _>>()?;
        let slot = self.run_slot(&waves)?;
        if slot.responded.iter().any(|&r| !r) {
            return Err(CoreError::NodeNotPoweredUp);
        }
        let len = slot.baseband.iter().map(Vec::len).min().unwrap_or(0);
        let (c0, c1) = Self::active_range(&slot.truths, pad, len);
        let bands: Vec<Vec<Complex64>> = slot
            .baseband
            .iter()
            .map(|b| b[c0..c1].to_vec())
            .collect();
        let bitrate = self.bitrate_bps();
        let max_lag = (0.002 * cfg.fs_hz).floor() as usize;

        let mut before = Vec::with_capacity(k);
        for i in 0..k {
            before.push(aligned_sinr_db(
                &naive_stream_estimate(&slot.envelopes[i][c0..c1]),
                &slot.truths[i][c0..c1],
                cfg.fs_hz,
                bitrate,
                max_lag,
            ));
        }
        let streams = zero_force_n_complex(&bands, &channels)?;
        let mut after = Vec::with_capacity(k);
        let mut crc = Vec::with_capacity(k);
        for (i, s) in streams.iter().enumerate() {
            after.push(aligned_sinr_db(
                s,
                &slot.truths[i][c0..c1],
                cfg.fs_hz,
                bitrate,
                max_lag,
            ));
            crc.push(
                self.receiver
                    .decode_envelope(s, bitrate)
                    .map(|d| d.packet.is_ok())
                    .unwrap_or(false),
            );
        }
        Ok(MultiNodeReport {
            sinr_before_db: before,
            sinr_after_db: after,
            crc_ok: crc,
            condition_number: condition_number_n(&channels),
            channels,
            streams,
        })
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_channel_collision_decodes() {
        let mut sim = MultiNodeSimulator::new(MultiNodeConfig::default()).unwrap();
        let report = sim.run().unwrap();
        assert_eq!(report.crc_ok.len(), 3);
        for (i, &ok) in report.crc_ok.iter().enumerate() {
            assert!(
                ok,
                "stream {i} failed (after-ZF SINR {:.1} dB)",
                report.sinr_after_db[i]
            );
        }
        assert!(report.condition_number.is_finite());
    }

    #[test]
    fn empty_node_list_rejected() {
        let cfg = MultiNodeConfig {
            nodes: vec![],
            ..Default::default()
        };
        assert!(MultiNodeSimulator::new(cfg).is_err());
    }
}
