//! The carrier-generating baseline: existing battery-free underwater
//! systems (§2) harvest energy for long periods and then *generate their
//! own acoustic carrier* to transmit, which costs orders of magnitude more
//! energy per bit than backscatter and caps their average throughput at a
//! few to tens of bits per second.

use crate::CoreError;

/// A harvest-then-transmit active acoustic node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActiveAcousticNode {
    /// Average harvested power, watts (e.g. from fish motion or a weak
    /// acoustic field).
    pub harvest_power_w: f64,
    /// Electrical power drawn while transmitting (power amplifier +
    /// electronics), watts. Even "low-power" acoustic transmitters draw
    /// hundreds of milliwatts to watts (§3.2 cites hundreds of watts for
    /// conventional modems).
    pub tx_power_w: f64,
    /// Instantaneous transmit bitrate, bits/second.
    pub tx_bitrate_bps: f64,
    /// Energy the storage element must accumulate before a burst, joules.
    pub burst_energy_j: f64,
}

impl ActiveAcousticNode {
    /// A representative fish-tag-class node: µW-scale harvesting, 100 mW
    /// transmit electronics, 1 kbps burst rate.
    pub fn fish_tag() -> Self {
        ActiveAcousticNode {
            harvest_power_w: 50e-6,
            tx_power_w: 100e-3,
            tx_bitrate_bps: 1_000.0,
            burst_energy_j: 10e-3,
        }
    }

    /// Energy per transmitted bit, joules.
    pub fn energy_per_bit_j(&self) -> f64 {
        self.tx_power_w / self.tx_bitrate_bps
    }

    /// Duty cycle: fraction of time the node can afford to transmit.
    // lint: unitless fraction of time in [0, 1]
    pub fn duty_cycle(&self) -> f64 {
        (self.harvest_power_w / self.tx_power_w).min(1.0)
    }

    /// Average (long-term) throughput, bits/second.
    pub fn average_throughput_bps(&self) -> f64 {
        self.tx_bitrate_bps * self.duty_cycle()
    }

    /// Seconds of harvesting needed before one burst.
    pub fn charge_time_s(&self) -> Result<f64, CoreError> {
        if !(self.harvest_power_w > 0.0) {
            return Err(CoreError::InvalidConfig("harvest_power_w"));
        }
        Ok(self.burst_energy_j / self.harvest_power_w)
    }

    /// Bits per burst.
    // lint: unitless bit count per energy burst
    pub fn bits_per_burst(&self) -> f64 {
        self.burst_energy_j / self.tx_power_w * self.tx_bitrate_bps
    }
}

/// A PAB backscatter node, reduced to its energy figures for comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackscatterEnergyModel {
    /// Node power while backscattering (Fig. 11 ~500 µW).
    pub active_power_w: f64,
    /// Uplink bitrate, bits/second.
    pub bitrate_bps: f64,
}

impl BackscatterEnergyModel {
    /// The PAB node at its ~2.7 kbps operating point.
    pub fn pab_node() -> Self {
        BackscatterEnergyModel {
            active_power_w: 535e-6,
            bitrate_bps: 2_730.0,
        }
    }

    /// Energy per bit, joules.
    pub fn energy_per_bit_j(&self) -> f64 {
        self.active_power_w / self.bitrate_bps
    }

    /// Average throughput when continuously illuminated and harvesting at
    /// least `active_power_w` (the backscatter node never needs to stop).
    pub fn average_throughput_bps(&self, harvested_power_w: f64) -> f64 {
        if harvested_power_w >= self.active_power_w {
            self.bitrate_bps
        } else if harvested_power_w <= 0.0 {
            0.0
        } else {
            // Duty-cycled like the active node when under-harvested.
            self.bitrate_bps * harvested_power_w / self.active_power_w
        }
    }
}

/// Head-to-head comparison at the same harvested power.
#[derive(Debug, Clone, Copy)]
pub struct Comparison {
    /// Energy-per-bit ratio: active / backscatter.
    pub energy_per_bit_ratio: f64,
    /// Throughput ratio: backscatter / active.
    pub throughput_ratio: f64,
}

/// Compare the two architectures at a common harvested power.
pub fn compare(
    active: &ActiveAcousticNode,
    backscatter: &BackscatterEnergyModel,
    harvested_power_w: f64,
) -> Comparison {
    let active_at = ActiveAcousticNode {
        harvest_power_w: harvested_power_w,
        ..*active
    };
    let bs_tp = backscatter.average_throughput_bps(harvested_power_w);
    let act_tp = active_at.average_throughput_bps();
    Comparison {
        energy_per_bit_ratio: active.energy_per_bit_j() / backscatter.energy_per_bit_j(),
        throughput_ratio: if act_tp > 0.0 { bs_tp / act_tp } else { f64::INFINITY },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backscatter_is_orders_of_magnitude_cheaper_per_bit() {
        let cmp = compare(
            &ActiveAcousticNode::fish_tag(),
            &BackscatterEnergyModel::pab_node(),
            535e-6,
        );
        // §2: "multiple orders of magnitude more energy than backscatter";
        // PAB "boosts the network throughput by two to three orders of
        // magnitude".
        assert!(
            cmp.energy_per_bit_ratio > 100.0,
            "energy ratio {}",
            cmp.energy_per_bit_ratio
        );
        assert!(
            cmp.throughput_ratio > 100.0 && cmp.throughput_ratio < 100_000.0,
            "throughput ratio {}",
            cmp.throughput_ratio
        );
    }

    #[test]
    fn fish_tag_throughput_is_fractional_bps() {
        let tag = ActiveAcousticNode::fish_tag();
        // §2: "average throughput is limited to few to tens of bits/s";
        // our representative tag sits at the sub-bps end.
        let tp = tag.average_throughput_bps();
        assert!(tp < 50.0, "tp={tp}");
        assert!(tp > 0.01);
    }

    #[test]
    fn charge_time_and_burst_arithmetic() {
        let tag = ActiveAcousticNode::fish_tag();
        // 10 mJ at 50 µW: 200 s.
        assert!((tag.charge_time_s().unwrap() - 200.0).abs() < 1e-9);
        // 10 mJ / 100 mW = 0.1 s of transmission = 100 bits.
        assert!((tag.bits_per_burst() - 100.0).abs() < 1e-9);
        let broken = ActiveAcousticNode {
            harvest_power_w: 0.0,
            ..tag
        };
        assert!(broken.charge_time_s().is_err());
    }

    #[test]
    fn under_harvested_backscatter_duty_cycles() {
        let bs = BackscatterEnergyModel::pab_node();
        let full = bs.average_throughput_bps(1e-3);
        assert_eq!(full, bs.bitrate_bps);
        let half = bs.average_throughput_bps(bs.active_power_w / 2.0);
        assert!((half - bs.bitrate_bps / 2.0).abs() < 1e-9);
        assert_eq!(bs.average_throughput_bps(0.0), 0.0);
    }

    #[test]
    fn duty_cycle_clamped() {
        let gen = ActiveAcousticNode {
            harvest_power_w: 1.0,
            tx_power_w: 0.5,
            tx_bitrate_bps: 100.0,
            burst_energy_j: 1.0,
        };
        assert_eq!(gen.duty_cycle(), 1.0);
    }
}
