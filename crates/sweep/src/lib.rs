//! Deterministic parallel sweep engine.
//!
//! Every figure binary is structurally the same program: build a grid of
//! configuration points (bitrates × noise levels, drive voltages × pools,
//! placements…), run an independent simulation per point, and stitch the
//! results together in grid order. The fault-injected network simulator
//! has the same shape one level down: each slot fans out independent
//! per-node exchanges and gathers their verdicts in query order. This
//! crate factors that shape out and makes it parallel **without giving
//! up reproducibility** (it sits below `pab-core` so both the figure
//! grids *and* the slot loop can ride the same engine):
//!
//! * **Per-point derived seeds.** A point never shares an RNG stream with
//!   its neighbours. Each point seeds its own `ChaCha8Rng` with
//!   [`derive_seed`]`(base_seed, point_index)`, so the randomness a point
//!   sees depends only on `(base_seed, index)` — not on how many threads
//!   ran, which point finished first, or whether the sweep was parallel
//!   at all.
//! * **Order-stable collection.** [`run`] returns results in point order
//!   (the shimmed rayon `collect` guarantees input-order gathering), so
//!   downstream aggregation is identical to the serial loop's.
//!
//! Together these give the determinism contract the tests assert:
//! `run(points, f) == run_serial(points, f)` **byte-for-byte**, for any
//! thread count, including 1.

/// Derive the RNG seed for sweep point `point_index` from `base_seed`.
///
/// SplitMix64 finaliser over `base_seed + index·golden-ratio`: cheap,
/// stateless, and scrambles enough that adjacent points get unrelated
/// ChaCha streams (a raw `base + index` would hand correlated seeds to
/// correlated configs).
pub fn derive_seed(base_seed: u64, point_index: u64) -> u64 {
    let mut z = base_seed
        .wrapping_add(point_index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run `f(index, point)` for every point, in parallel when the
/// `parallel` feature is on (the default), returning results in point
/// order. Output is bit-identical to [`run_serial`] as long as `f` is a
/// pure function of `(index, point)` — derive any randomness from
/// [`derive_seed`], never from shared state.
#[cfg(feature = "parallel")]
pub fn run<P, R, F>(points: Vec<P>, f: F) -> Vec<R>
where
    P: Send,
    R: Send,
    F: Fn(usize, P) -> R + Sync,
{
    use rayon::prelude::*;
    let indexed: Vec<(usize, P)> = points.into_iter().enumerate().collect();
    indexed.into_par_iter().map(|(i, p)| f(i, p)).collect()
}

/// Serial fallback used when the `parallel` feature is disabled.
#[cfg(not(feature = "parallel"))]
pub fn run<P, R, F>(points: Vec<P>, f: F) -> Vec<R>
where
    P: Send,
    R: Send,
    F: Fn(usize, P) -> R + Sync,
{
    run_serial(points, f)
}

/// The reference serial path: a plain indexed map, kept callable from
/// tests so the parallel/serial bit-identity contract stays asserted.
pub fn run_serial<P, R, F>(points: Vec<P>, f: F) -> Vec<R>
where
    F: Fn(usize, P) -> R,
{
    points
        .into_iter()
        .enumerate()
        .map(|(i, p)| f(i, p))
        .collect()
}

/// Run a sweep where every point also narrates into its own telemetry
/// recorder. `f(index, point, &mut recorder)` gets a fresh recorder
/// pre-tagged with `run_id = index` and `capacity` ring slots; the
/// returned recorders come back **in point order** alongside the results,
/// so exporting them (`pab_telemetry::export::events_csv` et al.) yields
/// byte-identical files whether the sweep ran parallel or serial — the
/// same order-stability argument as [`run`], extended to the traces.
pub fn run_recorded<P, R, F>(
    points: Vec<P>,
    capacity: usize,
    f: F,
) -> (Vec<R>, Vec<pab_telemetry::Recorder>)
where
    P: Send,
    R: Send,
    F: Fn(usize, P, &mut pab_telemetry::Recorder) -> R + Sync,
{
    let pairs = run(points, |i, p| {
        let mut rec = pab_telemetry::Recorder::new(capacity).with_run_id(i as u64);
        let out = f(i, p, &mut rec);
        (out, rec)
    });
    pairs.into_iter().unzip()
}

/// Serial reference for [`run_recorded`], kept callable so the
/// parallel/serial byte-identity of exported traces stays asserted in
/// tests.
pub fn run_recorded_serial<P, R, F>(
    points: Vec<P>,
    capacity: usize,
    f: F,
) -> (Vec<R>, Vec<pab_telemetry::Recorder>)
where
    F: Fn(usize, P, &mut pab_telemetry::Recorder) -> R,
{
    let pairs = run_serial(points, |i, p| {
        let mut rec = pab_telemetry::Recorder::new(capacity).with_run_id(i as u64);
        let out = f(i, p, &mut rec);
        (out, rec)
    });
    pairs.into_iter().unzip()
}

/// Cartesian product helper: the grid `[a × b]` flattened in row-major
/// order, so point index = `ia * b.len() + ib` — stable and documented,
/// because derived seeds hang off these indices.
pub fn grid2<A: Clone, B: Clone>(a: &[A], b: &[B]) -> Vec<(A, B)> {
    let mut points = Vec::with_capacity(a.len() * b.len());
    for x in a {
        for y in b {
            points.push((x.clone(), y.clone()));
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        // Each point draws from its own derived-seed RNG; the parallel
        // and serial paths must agree on every bit of every f64.
        let points: Vec<u64> = (0..40).collect();
        let f = |i: usize, p: u64| -> Vec<u64> {
            let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(123, i as u64));
            (0..10)
                .map(|_| (rng.gen_range(-1.0f64..1.0) * p as f64).to_bits())
                .collect()
        };
        let par = run(points.clone(), f);
        let ser = run_serial(points, f);
        assert_eq!(par, ser);
    }

    #[test]
    fn results_come_back_in_point_order() {
        let points: Vec<usize> = (0..100).collect();
        let out = run(points, |i, p| {
            assert_eq!(i, p);
            i * 7
        });
        assert_eq!(out, (0..100).map(|i| i * 7).collect::<Vec<_>>());
    }

    #[test]
    fn derived_seeds_are_distinct_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(derive_seed(42, i)), "seed collision at {i}");
        }
        // Pinned values: changing derive_seed silently would invalidate
        // every recorded figure, so lock the mapping down.
        assert_eq!(derive_seed(42, 0), derive_seed(42, 0));
        assert_ne!(derive_seed(42, 0), derive_seed(43, 0));
        assert_ne!(derive_seed(42, 0), derive_seed(42, 1));
    }

    #[test]
    fn recorded_sweep_exports_are_byte_identical_parallel_vs_serial() {
        // The telemetry determinism contract end to end: a recorded sweep
        // must export the same CSV/JSONL bytes no matter how many threads
        // ran it. Each point narrates events derived from its own seed.
        use pab_telemetry::export::{events_csv, events_jsonl, summary_csv};
        use pab_telemetry::{Event, Recorder};

        let points: Vec<u64> = (0..24).collect();
        let f = |i: usize, _p: u64, rec: &mut Recorder| {
            let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(99, i as u64));
            for slot in 0..8u64 {
                rec.begin_slot(slot, slot as f64 * 0.5);
                rec.record(Event::SlotStart { queries: 1 });
                let corr: f64 = rng.gen_range(0.0..1.0);
                let snr_db: f64 = rng.gen_range(-5.0..30.0);
                rec.record(Event::Detection {
                    node: (i % 4) as u8,
                    corr,
                    snr_db,
                });
                rec.observe("snr_db", -10.0, 40.0, 25, snr_db);
                rec.inc("detections");
                rec.record(Event::SlotEnd {
                    duration_s: 0.5,
                    bits: 64,
                });
            }
            i as u64
        };
        let (out_par, rec_par) = run_recorded(points.clone(), 64, f);
        let (out_ser, rec_ser) = run_recorded_serial(points, 64, f);
        assert_eq!(out_par, out_ser);

        let par_refs: Vec<&Recorder> = rec_par.iter().collect();
        let ser_refs: Vec<&Recorder> = rec_ser.iter().collect();
        assert_eq!(events_csv(&par_refs), events_csv(&ser_refs));
        assert_eq!(events_jsonl(&par_refs), events_jsonl(&ser_refs));
        assert_eq!(summary_csv(&par_refs), summary_csv(&ser_refs));
        // And recorders arrive in point order, pre-tagged with run ids.
        for (i, rec) in rec_par.iter().enumerate() {
            assert_eq!(rec.run_id(), i as u64);
        }
    }

    #[test]
    fn grid2_is_row_major() {
        let g = grid2(&[1, 2], &["a", "b", "c"]);
        assert_eq!(
            g,
            vec![(1, "a"), (1, "b"), (1, "c"), (2, "a"), (2, "b"), (2, "c")]
        );
    }
}
