//! Typed trace events: everything the MAC, receiver and fault layer know
//! per slot, as a `Copy` enum so recording never allocates.

/// Which impairment class a fault-window transition refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A broadband noise burst window.
    Burst,
    /// A raised-cosine path fade window.
    Fade,
    /// A supercap brown-out (dropout) window.
    Dropout,
    /// A non-zero carrier/clock drift offset.
    Drift,
}

impl FaultKind {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Burst => "burst",
            FaultKind::Fade => "fade",
            FaultKind::Dropout => "dropout",
            FaultKind::Drift => "drift",
        }
    }
}

/// One trace event. Variants mirror the per-slot state machine of the
/// resilient MAC (`pab_net::mac::ResilientMac`), the receiver's detection
/// verdicts, and the fault layer's windows; every payload is plain `Copy`
/// data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A slot opened with this many scheduled queries (0 = every eligible
    /// node was backing off and the channel idled).
    SlotStart {
        /// Queries scheduled into the slot.
        queries: u32,
    },
    /// A slot closed.
    SlotEnd {
        /// Wall-of-simulation duration of the slot, seconds.
        duration_s: f64,
        /// Delivered payload bits within the slot.
        bits: u64,
    },
    /// Preamble found and CRC passed for `node`.
    Detection {
        /// Node address.
        node: u8,
        /// Peak normalized preamble correlation in [0, 1].
        corr: f64,
        /// Receiver-estimated SNR, dB.
        snr_db: f64,
    },
    /// Preamble found but the payload failed CRC (alive but noisy).
    CrcFail {
        /// Node address.
        node: u8,
        /// Peak normalized preamble correlation in [0, 1].
        corr: f64,
    },
    /// No preamble in the response window (dead, browned out, or faded).
    Erasure {
        /// Node address.
        node: u8,
    },
    /// The MAC consumed one retry from `node`'s budget.
    Retry {
        /// Node address.
        node: u8,
        /// Retries consumed so far for the in-flight packet.
        retries_used: u32,
    },
    /// The MAC backed `node` off until `until_slot`.
    Backoff {
        /// Node address.
        node: u8,
        /// First slot the node is eligible again.
        until_slot: u64,
    },
    /// The MAC quarantined `node` (erasure streak) until `until_slot`.
    Quarantine {
        /// Node address.
        node: u8,
        /// First slot the node will be re-probed.
        until_slot: u64,
        /// Re-probes that have failed so far.
        probes_failed: u32,
    },
    /// The MAC permanently evicted `node`.
    Eviction {
        /// Node address.
        node: u8,
    },
    /// The closed-loop rate ladder moved for `node`.
    RateStep {
        /// Node address.
        node: u8,
        /// The newly commanded FM0 uplink rate, bps.
        rate_bps: f64,
        /// Ladder rung after the step (0 = fastest).
        level: u32,
    },
    /// `node`'s link entered a fault window of `kind`.
    FaultEnter {
        /// Node address.
        node: u8,
        /// Impairment class.
        kind: FaultKind,
    },
    /// `node`'s link left a fault window of `kind`.
    FaultExit {
        /// Node address.
        node: u8,
        /// Impairment class.
        kind: FaultKind,
    },
    /// Per-exchange energy sample for `node` (the Fig. 9 observables).
    EnergySample {
        /// Node address.
        node: u8,
        /// Energy turned over by the node during the exchange, joules.
        harvested_j: f64,
        /// Average node power during the exchange, watts.
        power_w: f64,
        /// Peak rectified (harvested) voltage, volts.
        rectified_v: f64,
    },
    /// A broadcast collision slot ran: `participants` concurrent uplinks
    /// separated by zero-forcing over a channel matrix with this
    /// condition number (§8, Fig. 10).
    CollisionSlot {
        /// Concurrent uplink streams in the slot.
        participants: u32,
        /// Condition number of the estimated channel matrix.
        condition_number: f64,
    },
    /// A proposed collision group was abandoned for FDMA because its
    /// trained channel matrix exceeded the conditioning gate.
    CollisionFallback {
        /// Members of the abandoned group.
        participants: u32,
        /// Condition number that tripped the gate (infinite when the
        /// matrix was outright singular).
        condition_number: f64,
    },
    /// Verdict for one zero-forced stream of a collision slot (the
    /// per-stream counterpart of Detection/CrcFail/Erasure, so MAC
    /// accounting for collision participants stays individually visible).
    StreamVerdict {
        /// Node address the separated stream belongs to.
        node: u8,
        /// Whether the stream's packet passed CRC.
        crc_ok: bool,
        /// Decoder SNR estimate for the separated stream, dB.
        snr_db: f64,
    },
}

impl Event {
    /// Stable lowercase event name used in exports and per-event counters.
    pub fn name(&self) -> &'static str {
        match self {
            Event::SlotStart { .. } => "slot_start",
            Event::SlotEnd { .. } => "slot_end",
            Event::Detection { .. } => "detection",
            Event::CrcFail { .. } => "crc_fail",
            Event::Erasure { .. } => "erasure",
            Event::Retry { .. } => "retry",
            Event::Backoff { .. } => "backoff",
            Event::Quarantine { .. } => "quarantine",
            Event::Eviction { .. } => "eviction",
            Event::RateStep { .. } => "rate_step",
            Event::FaultEnter { .. } => "fault_enter",
            Event::FaultExit { .. } => "fault_exit",
            Event::EnergySample { .. } => "energy_sample",
            Event::CollisionSlot { .. } => "collision_slot",
            Event::CollisionFallback { .. } => "collision_fallback",
            Event::StreamVerdict { .. } => "stream_verdict",
        }
    }

    /// The node the event is about, when it is about one.
    pub fn node(&self) -> Option<u8> {
        match *self {
            Event::SlotStart { .. }
            | Event::SlotEnd { .. }
            | Event::CollisionSlot { .. }
            | Event::CollisionFallback { .. } => None,
            Event::Detection { node, .. }
            | Event::CrcFail { node, .. }
            | Event::Erasure { node }
            | Event::Retry { node, .. }
            | Event::Backoff { node, .. }
            | Event::Quarantine { node, .. }
            | Event::Eviction { node }
            | Event::RateStep { node, .. }
            | Event::FaultEnter { node, .. }
            | Event::FaultExit { node, .. }
            | Event::EnergySample { node, .. }
            | Event::StreamVerdict { node, .. } => Some(node),
        }
    }
}

/// An [`Event`] stamped with the recorder's monotonic simulation clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedEvent {
    /// Slot index the event occurred in (0 before the first slot opens).
    pub slot: u64,
    /// Simulation time, seconds (monotonic per recorder).
    pub t_s: f64,
    /// The event.
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_unique() {
        let events = [
            Event::SlotStart { queries: 1 },
            Event::SlotEnd { duration_s: 0.1, bits: 8 },
            Event::Detection { node: 1, corr: 0.9, snr_db: 10.0 },
            Event::CrcFail { node: 1, corr: 0.4 },
            Event::Erasure { node: 1 },
            Event::Retry { node: 1, retries_used: 1 },
            Event::Backoff { node: 1, until_slot: 5 },
            Event::Quarantine { node: 1, until_slot: 9, probes_failed: 0 },
            Event::Eviction { node: 1 },
            Event::RateStep { node: 1, rate_bps: 1024.0, level: 2 },
            Event::FaultEnter { node: 1, kind: FaultKind::Dropout },
            Event::FaultExit { node: 1, kind: FaultKind::Dropout },
            Event::EnergySample { node: 1, harvested_j: 1e-6, power_w: 2e-6, rectified_v: 1.2 },
            Event::CollisionSlot { participants: 2, condition_number: 4.5 },
            Event::CollisionFallback { participants: 2, condition_number: 80.0 },
            Event::StreamVerdict { node: 1, crc_ok: true, snr_db: 12.0 },
        ];
        let mut names: Vec<&str> = events.iter().map(Event::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), events.len(), "duplicate event name");
    }

    #[test]
    fn node_attribution() {
        assert_eq!(Event::SlotStart { queries: 0 }.node(), None);
        assert_eq!(Event::Erasure { node: 9 }.node(), Some(9));
        assert_eq!(
            Event::FaultEnter { node: 3, kind: FaultKind::Fade }.node(),
            Some(3)
        );
        assert_eq!(
            Event::CollisionSlot { participants: 2, condition_number: 4.5 }.node(),
            None
        );
        assert_eq!(
            Event::StreamVerdict { node: 7, crc_ok: false, snr_db: -3.0 }.node(),
            Some(7)
        );
    }

    #[test]
    fn fault_kind_names() {
        assert_eq!(FaultKind::Burst.name(), "burst");
        assert_eq!(FaultKind::Fade.name(), "fade");
        assert_eq!(FaultKind::Dropout.name(), "dropout");
        assert_eq!(FaultKind::Drift.name(), "drift");
    }
}
