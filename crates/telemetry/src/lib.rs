//! # pab-telemetry — deterministic observability for PAB simulations
//!
//! The paper's headline results are *trajectories*, not endpoints: Fig. 8's
//! closed-loop rate ladder and Fig. 9's power-up behaviour only show up in
//! a slot-by-slot narration of what the MAC and the receiver actually did.
//! The simulators compute all of that state — EWMA link quality, retry and
//! backoff windows, quarantine, erasure-vs-CRC verdicts, harvested energy —
//! and, before this crate, threw it away.
//!
//! This crate is the sink: a zero-dependency, allocation-light event
//! recorder the rest of the workspace threads a `&mut` of through the
//! stack. Design rules, in priority order:
//!
//! 1. **Deterministic.** Events are stamped with *simulation* time pushed
//!    in by the caller ([`Recorder::begin_slot`] / [`Recorder::advance_clock`]),
//!    never a wall clock — the workspace's `no-wallclock-no-threadrng`
//!    lint applies to this crate like any other library crate. Exported
//!    CSV/JSONL is a pure function of the recorded events, so two
//!    same-seed runs (serial or parallel, any thread count) export
//!    byte-identical files.
//! 2. **Bounded.** The event log is a ring buffer with a hard capacity;
//!    when full, the *oldest* event is evicted and counted in
//!    [`Recorder::events_dropped`] — overflow is explicit accounting, never
//!    an allocation spiral or a silent truncation.
//! 3. **Allocation-light.** [`Event`] is a `Copy` enum (no strings, no
//!    boxes); counters and histogram names are `&'static str`; the hot
//!    `record` path does no allocation once the ring is at capacity.
//!
//! The exporters ([`export::events_csv`], [`export::events_jsonl`],
//! [`export::summary_csv`], and the compact [`binfmt::events_bin`])
//! take a slice of recorders and emit rows in recorder order then event
//! order, which is how the sweep engine guarantees parallel == serial
//! byte-identity: one recorder per sweep point, merged in point-index
//! order.

pub mod binfmt;
pub mod event;
pub mod export;
pub mod metrics;
pub mod recorder;

pub use binfmt::{decode_events_bin, events_bin, BinRecord};
pub use event::{Event, FaultKind, TimedEvent};
pub use metrics::{Counters, Histogram};
pub use recorder::{Recorder, DEFAULT_CAPACITY};

/// Errors from telemetry configuration (never from the hot record path,
/// which is total by design).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryError {
    /// A histogram was configured with a non-finite or inverted range, or
    /// zero buckets.
    InvalidHistogram(&'static str),
}

impl std::fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TelemetryError::InvalidHistogram(what) => {
                write!(f, "invalid histogram configuration: {what}")
            }
        }
    }
}

impl std::error::Error for TelemetryError {}

/// Format an `f64` for export. Rust's `Display` for `f64` is the shortest
/// round-trip representation — fully deterministic for a given bit
/// pattern, platform-independent, and what both exporters use so CSV and
/// JSONL agree on every digit.
pub(crate) fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else if x.is_nan() {
        "nan".to_string()
    } else if x > 0.0 {
        "inf".to_string()
    } else {
        "-inf".to_string()
    }
}
