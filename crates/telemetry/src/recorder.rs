//! The event recorder: a bounded ring of timed events plus aggregate
//! counters and histograms, stamped with a caller-driven monotonic
//! simulation clock.

use crate::event::{Event, TimedEvent};
use crate::metrics::{Counters, Histogram};
use std::collections::{BTreeMap, VecDeque};

/// Default event-ring capacity: generous enough to hold every event of a
/// full `ext_fault_resilience` run, small enough to stay cheap when a
/// sweep spawns one recorder per point.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// A deterministic event recorder. One recorder belongs to one simulation
/// run (one sweep point); aggregation across runs happens at export time,
/// in an order the caller controls.
#[derive(Debug, Clone)]
pub struct Recorder {
    run_id: u64,
    capacity: usize,
    events: VecDeque<TimedEvent>,
    events_dropped: u64,
    slot: u64,
    t_s: f64,
    clock_regressions: u64,
    counters: Counters,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }
}

impl Recorder {
    /// New recorder with the given event-ring capacity (clamped to at
    /// least 1 so `record` always retains the newest event).
    pub fn new(capacity: usize) -> Self {
        Recorder {
            run_id: 0,
            capacity: capacity.max(1),
            events: VecDeque::new(),
            events_dropped: 0,
            slot: 0,
            t_s: 0.0,
            clock_regressions: 0,
            counters: Counters::new(),
            histograms: BTreeMap::new(),
        }
    }

    /// Tag this recorder with a run identifier (the sweep point index);
    /// exported rows carry it in the `run` column.
    pub fn with_run_id(mut self, run_id: u64) -> Self {
        self.run_id = run_id;
        self
    }

    /// The run identifier.
    pub fn run_id(&self) -> u64 {
        self.run_id
    }

    /// Open a slot: subsequent events are stamped `(slot, t_s)`. The clock
    /// is monotonic — a `t_s` earlier than the current clock is clamped
    /// (the stamp stays put) and counted in [`Recorder::clock_regressions`].
    pub fn begin_slot(&mut self, slot: u64, t_s: f64) {
        self.slot = slot;
        self.advance_clock(t_s);
    }

    /// Move the simulation clock forward within the current slot. Ignores
    /// (but counts) attempts to move it backwards or to a non-finite time.
    pub fn advance_clock(&mut self, t_s: f64) {
        if t_s.is_finite() && t_s >= self.t_s {
            self.t_s = t_s;
        } else {
            self.clock_regressions += 1;
        }
    }

    /// Current slot index.
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Current simulation time, seconds.
    pub fn t_s(&self) -> f64 {
        self.t_s
    }

    /// How many times a caller tried to move the clock backwards (should
    /// be 0 in a correct simulation; exported in the summary as a tripwire).
    pub fn clock_regressions(&self) -> u64 {
        self.clock_regressions
    }

    /// Record one event, stamped with the current clock. When the ring is
    /// full the oldest event is evicted and [`Recorder::events_dropped`]
    /// incremented — accounting is exact, eviction is never silent. Every
    /// event also bumps the `event.<name>` counter, which survives
    /// eviction (counters are unbounded u64s, not ring entries).
    pub fn record(&mut self, event: Event) {
        self.counters.inc(event.name());
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.events_dropped += 1;
        }
        self.events.push_back(TimedEvent { slot: self.slot, t_s: self.t_s, event });
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TimedEvent> + '_ {
        self.events.iter()
    }

    /// Number of events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no event has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted because the ring was full.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Aggregate counters (per-event-name counts plus anything recorded
    /// via [`Recorder::inc`]).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Bump a named counter by one.
    pub fn inc(&mut self, name: &'static str) {
        self.counters.inc(name);
    }

    /// Bump a named counter by `by`.
    pub fn add(&mut self, name: &'static str, by: u64) {
        self.counters.add(name, by);
    }

    /// Fold a sample into the named histogram, creating it with the given
    /// configuration on first use. A histogram name is bound to its first
    /// configuration; later calls with a different `(lo, hi, buckets)`
    /// still observe into the original (fixed edges are what make merges
    /// and exports deterministic). Invalid configurations on first use are
    /// counted under the `telemetry.bad_histogram` counter and the sample
    /// is discarded — the hot path never panics.
    // lint: unitless bounds and sample carry the named metric's unit (e.g. rx.snr_db)
    pub fn observe(&mut self, name: &'static str, lo: f64, hi: f64, buckets: usize, x: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(x);
            return;
        }
        match Histogram::new(lo, hi, buckets) {
            Ok(mut h) => {
                h.observe(x);
                self.histograms.insert(name, h);
            }
            Err(_) => self.counters.inc("telemetry.bad_histogram"),
        }
    }

    /// Fold another recorder's aggregates and events into this one, in
    /// `other`'s recording order.
    ///
    /// This is how the parallel slot engine keeps traced runs
    /// byte-identical to serial ones: each concurrent exchange records
    /// into its own fresh sub-recorder, and the coordinator absorbs the
    /// sub-recorders **in query order** — so counter totals, histogram
    /// contents (including the order-sensitive `f64` sums) and the event
    /// ring end up exactly as if everything had been recorded serially.
    ///
    /// Counters add; histograms with identical configuration merge
    /// (mismatched configurations are counted under
    /// `telemetry.bad_histogram` and skipped, never panicked on); events
    /// append under this recorder's current slot/time and ring capacity;
    /// `events_dropped` and `clock_regressions` accumulate.
    pub fn absorb(&mut self, other: &Recorder) {
        self.counters.merge(other.counters());
        for (name, h) in other.histograms() {
            match self.histograms.get_mut(name) {
                Some(mine) => {
                    if !mine.merge(h) {
                        self.counters.inc("telemetry.bad_histogram");
                    }
                }
                None => {
                    self.histograms.insert(name, h.clone());
                }
            }
        }
        for timed in other.events() {
            if self.events.len() == self.capacity {
                self.events.pop_front();
                self.events_dropped += 1;
            }
            self.events.push_back(TimedEvent {
                slot: self.slot,
                t_s: self.t_s,
                event: timed.event,
            });
        }
        self.events_dropped += other.events_dropped();
        self.clock_regressions += other.clock_regressions();
    }

    /// Histograms in lexicographic name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// Look up one histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overflow_accounting_is_exact() {
        let mut r = Recorder::new(8);
        for i in 0..11u64 {
            r.begin_slot(i, i as f64 * 0.25);
            r.record(Event::SlotStart { queries: 1 });
        }
        assert_eq!(r.len(), 8);
        assert_eq!(r.events_dropped(), 3, "11 pushed into capacity 8");
        // Oldest three evicted: retained log starts at slot 3.
        assert_eq!(r.events().next().map(|e| e.slot), Some(3));
        // The per-event counter still saw all 11.
        assert_eq!(r.counters().get("slot_start"), 11);
    }

    #[test]
    fn clock_is_monotonic_and_counts_regressions() {
        let mut r = Recorder::new(4);
        r.begin_slot(0, 1.0);
        r.advance_clock(0.5);
        assert_eq!(r.t_s(), 1.0, "backwards move is clamped");
        assert_eq!(r.clock_regressions(), 1);
        r.advance_clock(f64::NAN);
        assert_eq!(r.clock_regressions(), 2);
        r.advance_clock(2.0);
        assert_eq!(r.t_s(), 2.0);
        r.record(Event::Erasure { node: 1 });
        assert_eq!(r.events().next().map(|e| e.t_s), Some(2.0));
    }

    #[test]
    fn capacity_zero_clamps_to_one() {
        let mut r = Recorder::new(0);
        r.record(Event::Eviction { node: 2 });
        r.record(Event::Eviction { node: 3 });
        assert_eq!(r.len(), 1);
        assert_eq!(r.events_dropped(), 1);
        assert_eq!(
            r.events().next().map(|e| e.event),
            Some(Event::Eviction { node: 3 }),
            "newest event is the one retained"
        );
    }

    #[test]
    fn histogram_name_binds_first_config() {
        let mut r = Recorder::new(4);
        r.observe("snr_db", 0.0, 30.0, 30, 12.5);
        r.observe("snr_db", -10.0, 10.0, 4, 29.0);
        let h = r.histogram("snr_db").unwrap();
        assert_eq!(h.lo(), 0.0);
        assert_eq!(h.hi(), 30.0);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn bad_histogram_config_is_counted_not_panicked() {
        let mut r = Recorder::new(4);
        r.observe("broken", 1.0, 1.0, 4, 0.5);
        assert!(r.histogram("broken").is_none());
        assert_eq!(r.counters().get("telemetry.bad_histogram"), 1);
    }

    #[test]
    fn absorb_in_order_matches_direct_recording() {
        // The parallel-slot contract: recording through per-exchange
        // sub-recorders absorbed in order must equal recording directly,
        // including the order-sensitive f64 histogram sums.
        let samples = [3.7, -1.25, 14.5, 0.0625];
        let mut direct = Recorder::new(16);
        for (i, &x) in samples.iter().enumerate() {
            direct.inc("rx.detections");
            direct.observe("snr_db", -10.0, 40.0, 25, x);
            direct.record(Event::Erasure { node: i as u8 });
        }
        let mut absorbed = Recorder::new(16);
        for (i, &x) in samples.iter().enumerate() {
            let mut sub = Recorder::new(16);
            sub.inc("rx.detections");
            sub.observe("snr_db", -10.0, 40.0, 25, x);
            sub.record(Event::Erasure { node: i as u8 });
            absorbed.absorb(&sub);
        }
        assert_eq!(direct.counters(), absorbed.counters());
        assert_eq!(
            direct.histogram("snr_db"),
            absorbed.histogram("snr_db"),
            "bitwise-equal sums require in-order absorption"
        );
        let d: Vec<_> = direct.events().map(|t| t.event).collect();
        let a: Vec<_> = absorbed.events().map(|t| t.event).collect();
        assert_eq!(d, a);
    }

    #[test]
    fn absorb_honors_ring_capacity() {
        let mut big = Recorder::new(64);
        for i in 0..10u8 {
            big.record(Event::Erasure { node: i });
        }
        let mut small = Recorder::new(4);
        small.absorb(&big);
        assert_eq!(small.len(), 4);
        assert_eq!(small.events_dropped(), 6);
    }
}
