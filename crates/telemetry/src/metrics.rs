//! Counters and fixed-bucket histograms: the aggregate half of the
//! telemetry story, deterministic by construction (BTreeMap ordering,
//! fixed bucket edges decided at registration).

use crate::TelemetryError;
use std::collections::BTreeMap;

/// Named monotonic counters. Keys are `&'static str` so incrementing
/// never allocates; iteration order is lexicographic (BTreeMap), which is
/// what makes the summary export stable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    counts: BTreeMap<&'static str, u64>,
}

impl Counters {
    /// New empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `by` to `name` (creating it at zero).
    pub fn add(&mut self, name: &'static str, by: u64) {
        *self.counts.entry(name).or_insert(0) += by;
    }

    /// Increment `name` by one.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Current value of `name` (0 when never incremented).
    pub fn get(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// All counters in lexicographic name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no counter exists yet.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Merge another counter set into this one (used when aggregating
    /// per-worker recorders).
    pub fn merge(&mut self, other: &Counters) {
        for (name, v) in other.iter() {
            self.add(name, v);
        }
    }
}

/// A fixed-bucket histogram over `[lo, hi)` with `buckets` equal-width
/// bins plus explicit underflow/overflow bins. Bucket edges are fixed at
/// construction, so two runs that observe the same samples produce the
/// same counts regardless of observation order.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
    finite: u64,
    sum: f64,
}

impl Histogram {
    /// New histogram over `[lo, hi)` with `buckets` bins.
    // lint: unitless bounds carry the unit of the named metric (e.g. rx.snr_db)
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Result<Self, TelemetryError> {
        if !lo.is_finite() || !hi.is_finite() || !(hi > lo) {
            return Err(TelemetryError::InvalidHistogram("range"));
        }
        if buckets == 0 {
            return Err(TelemetryError::InvalidHistogram("zero buckets"));
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            total: 0,
            finite: 0,
            sum: 0.0,
        })
    }

    /// Fold one sample in. Non-finite samples count as overflow (they are
    /// still accounted, never silently dropped).
    // lint: unitless sample in the named metric's unit
    pub fn observe(&mut self, x: f64) {
        self.total += 1;
        if x.is_finite() {
            self.finite += 1;
            self.sum += x;
        }
        if !x.is_finite() {
            self.overflow += 1;
        } else if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Lower edge of the range.
    // lint: unitless bound in the named metric's unit
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge of the range.
    // lint: unitless bound in the named metric's unit
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Per-bucket counts (underflow/overflow excluded).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above `hi` (plus non-finite samples).
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of the finite samples observed (0.0 when none yet).
    // lint: unitless mean in the named metric's unit
    pub fn mean(&self) -> f64 {
        if self.finite == 0 {
            0.0
        } else {
            self.sum / self.finite as f64
        }
    }

    /// Merge a histogram with identical configuration; returns false (and
    /// changes nothing) when the configurations differ.
    pub fn merge(&mut self, other: &Histogram) -> bool {
        if self.lo.to_bits() != other.lo.to_bits()
            || self.hi.to_bits() != other.hi.to_bits()
            || self.counts.len() != other.counts.len()
        {
            return false;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
        self.finite += other.finite;
        self.sum += other.sum;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_in_name_order() {
        let mut c = Counters::new();
        c.inc("zebra");
        c.inc("alpha");
        c.add("alpha", 2);
        assert_eq!(c.get("alpha"), 3);
        assert_eq!(c.get("zebra"), 1);
        assert_eq!(c.get("missing"), 0);
        let names: Vec<&str> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zebra"], "lexicographic order");
        let mut d = Counters::new();
        d.inc("alpha");
        c.merge(&d);
        assert_eq!(c.get("alpha"), 4);
    }

    #[test]
    fn histogram_buckets_and_edges() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        for &x in &[-0.1, 0.0, 0.24, 0.25, 0.5, 0.99, 1.0, f64::NAN] {
            h.observe(x);
        }
        assert_eq!(h.bucket_counts(), &[2, 1, 1, 1]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2, "hi edge and NaN both overflow");
        assert_eq!(h.total(), 8);
    }

    #[test]
    fn histogram_rejects_bad_config() {
        assert!(Histogram::new(1.0, 0.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, f64::INFINITY, 4).is_err());
    }

    #[test]
    fn histogram_merge_requires_identical_config() {
        let mut a = Histogram::new(0.0, 1.0, 4).unwrap();
        let mut b = Histogram::new(0.0, 1.0, 4).unwrap();
        a.observe(0.1);
        b.observe(0.9);
        assert!(a.merge(&b));
        assert_eq!(a.total(), 2);
        let c = Histogram::new(0.0, 2.0, 4).unwrap();
        assert!(!a.merge(&c), "mismatched ranges must refuse");
        assert_eq!(a.total(), 2, "refused merge must not mutate");
    }
}
