//! Compact binary trace format: fixed-width little-endian event records.
//!
//! Long fault-injection campaigns retain millions of events; at ~100
//! bytes per CSV row the text exporters dominate disk and parse time.
//! This module packs each event into one 24-byte record — roughly a 4×
//! saving over CSV — while keeping the same determinism contract as the
//! text exporters: the bytes are a pure function of recorder contents
//! and recorder order, so parallel and serial sweeps produce identical
//! files.
//!
//! # Layout
//!
//! ```text
//! file    := magic "PABT" | version u16 | record_len u16 | n_sections u32
//!            | section*
//! section := run_id u32 | n_records u32 | record{n_records}
//! record  := kind u8 | node u8 | aux u16 | slot u32 | t_s f32
//!            | a f32 | b f32 | c f32            (24 bytes, little-endian)
//! ```
//!
//! `node` is `0xFF` for events with no node attribution. `aux` carries
//! the event's small integer payload (queries, retries, ladder level,
//! fault-kind index, ...). `a`/`b`/`c` carry float payloads; `f64`
//! values are narrowed to `f32`, and wide counters (`until_slot`,
//! per-slot bits) ride in a float field — exact up to 2^24, far beyond
//! any realistic slot count. The decoder widens back to the [`Event`]
//! variants, so a round trip is lossless whenever the payloads are
//! representable in `f32` (true for every counter the simulator emits;
//! measured floats lose only sub-`f32` precision).

use crate::event::{Event, FaultKind};
use crate::recorder::Recorder;

/// File magic, first four bytes of every binary trace.
pub const BIN_MAGIC: [u8; 4] = *b"PABT";
/// Format version written by [`events_bin`].
pub const BIN_VERSION: u16 = 1;
/// Bytes per event record.
pub const BIN_RECORD_LEN: usize = 24;

/// Sentinel `node` byte for events with no node attribution.
const NODE_NONE: u8 = 0xFF;

/// Stable kind codes, one per [`Event`] variant. Appending new variants
/// is fine; renumbering is a format break and needs a version bump.
const KIND_SLOT_START: u8 = 0;
const KIND_SLOT_END: u8 = 1;
const KIND_DETECTION: u8 = 2;
const KIND_CRC_FAIL: u8 = 3;
const KIND_ERASURE: u8 = 4;
const KIND_RETRY: u8 = 5;
const KIND_BACKOFF: u8 = 6;
const KIND_QUARANTINE: u8 = 7;
const KIND_EVICTION: u8 = 8;
const KIND_RATE_STEP: u8 = 9;
const KIND_FAULT_ENTER: u8 = 10;
const KIND_FAULT_EXIT: u8 = 11;
const KIND_ENERGY_SAMPLE: u8 = 12;
const KIND_COLLISION_SLOT: u8 = 13;
const KIND_COLLISION_FALLBACK: u8 = 14;
const KIND_STREAM_VERDICT: u8 = 15;

/// Narrow an `f64` payload to the record's `f32` field, saturating at
/// the `f32` range instead of producing infinities.
fn f32_field(x: f64) -> f32 {
    if x.is_nan() {
        return f32::NAN;
    }
    x.clamp(-f64::from(f32::MAX), f64::from(f32::MAX)) as f32
}

/// Saturate a wide counter into the 16-bit `aux` field.
fn aux_field(x: u32) -> u16 {
    u16::try_from(x).unwrap_or(u16::MAX)
}

/// Saturate the slot counter into the record's 32-bit slot field.
fn slot_field(slot: u64) -> u32 {
    u32::try_from(slot).unwrap_or(u32::MAX)
}

/// Wide counters (`until_slot`, bits) ride in a float payload field:
/// exact up to 2^24, saturating far above any realistic simulation.
fn counter_field(x: u64) -> f32 {
    f32_field(x as f64)
}

fn fault_kind_code(kind: FaultKind) -> u16 {
    match kind {
        FaultKind::Burst => 0,
        FaultKind::Fade => 1,
        FaultKind::Dropout => 2,
        FaultKind::Drift => 3,
    }
}

fn fault_kind_from_code(code: u16) -> Option<FaultKind> {
    match code {
        0 => Some(FaultKind::Burst),
        1 => Some(FaultKind::Fade),
        2 => Some(FaultKind::Dropout),
        3 => Some(FaultKind::Drift),
        _ => None,
    }
}

/// Split an event into its record fields:
/// `(kind, node, aux, a, b, c)`.
fn encode_fields(event: &Event) -> (u8, u8, u16, f32, f32, f32) {
    let node = event.node().unwrap_or(NODE_NONE);
    match *event {
        Event::SlotStart { queries } => (KIND_SLOT_START, node, aux_field(queries), 0.0, 0.0, 0.0),
        Event::SlotEnd { duration_s, bits } => (
            KIND_SLOT_END,
            node,
            0,
            f32_field(duration_s),
            counter_field(bits),
            0.0,
        ),
        Event::Detection { corr, snr_db, .. } => (
            KIND_DETECTION,
            node,
            0,
            f32_field(corr),
            f32_field(snr_db),
            0.0,
        ),
        Event::CrcFail { corr, .. } => (KIND_CRC_FAIL, node, 0, f32_field(corr), 0.0, 0.0),
        Event::Erasure { .. } => (KIND_ERASURE, node, 0, 0.0, 0.0, 0.0),
        Event::Retry { retries_used, .. } => {
            (KIND_RETRY, node, aux_field(retries_used), 0.0, 0.0, 0.0)
        }
        Event::Backoff { until_slot, .. } => {
            (KIND_BACKOFF, node, 0, counter_field(until_slot), 0.0, 0.0)
        }
        Event::Quarantine { until_slot, probes_failed, .. } => (
            KIND_QUARANTINE,
            node,
            aux_field(probes_failed),
            counter_field(until_slot),
            0.0,
            0.0,
        ),
        Event::Eviction { .. } => (KIND_EVICTION, node, 0, 0.0, 0.0, 0.0),
        Event::RateStep { rate_bps, level, .. } => (
            KIND_RATE_STEP,
            node,
            aux_field(level),
            f32_field(rate_bps),
            0.0,
            0.0,
        ),
        Event::FaultEnter { kind, .. } => {
            (KIND_FAULT_ENTER, node, fault_kind_code(kind), 0.0, 0.0, 0.0)
        }
        Event::FaultExit { kind, .. } => {
            (KIND_FAULT_EXIT, node, fault_kind_code(kind), 0.0, 0.0, 0.0)
        }
        Event::EnergySample { harvested_j, power_w, rectified_v, .. } => (
            KIND_ENERGY_SAMPLE,
            node,
            0,
            f32_field(harvested_j),
            f32_field(power_w),
            f32_field(rectified_v),
        ),
        Event::CollisionSlot { participants, condition_number } => (
            KIND_COLLISION_SLOT,
            node,
            aux_field(participants),
            f32_field(condition_number),
            0.0,
            0.0,
        ),
        Event::CollisionFallback { participants, condition_number } => (
            KIND_COLLISION_FALLBACK,
            node,
            aux_field(participants),
            f32_field(condition_number),
            0.0,
            0.0,
        ),
        Event::StreamVerdict { crc_ok, snr_db, .. } => (
            KIND_STREAM_VERDICT,
            node,
            u16::from(crc_ok),
            f32_field(snr_db),
            0.0,
            0.0,
        ),
    }
}

/// Encode every retained event of every recorder, recorder order then
/// event (recording) order — the same ordering contract as
/// [`events_csv`](crate::export::events_csv), so parallel and serial
/// sweeps produce byte-identical files.
pub fn events_bin(recorders: &[&Recorder]) -> Vec<u8> {
    let total: usize = recorders.iter().map(|r| r.len()).sum();
    let mut out = Vec::with_capacity(12 + recorders.len() * 8 + total * BIN_RECORD_LEN);
    out.extend_from_slice(&BIN_MAGIC);
    out.extend_from_slice(&BIN_VERSION.to_le_bytes());
    const RECORD_LEN_U16: u16 = BIN_RECORD_LEN as u16;
    out.extend_from_slice(&RECORD_LEN_U16.to_le_bytes());
    let n_sections = u32::try_from(recorders.len()).unwrap_or(u32::MAX);
    out.extend_from_slice(&n_sections.to_le_bytes());
    // lint: allow(lossy-cast) u32 -> usize widens on every supported target
    for rec in recorders.iter().take(n_sections as usize) {
        out.extend_from_slice(&slot_field(rec.run_id()).to_le_bytes());
        let n_records = u32::try_from(rec.len()).unwrap_or(u32::MAX);
        out.extend_from_slice(&n_records.to_le_bytes());
        // lint: allow(lossy-cast) u32 -> usize widens on every supported target
        for te in rec.events().take(n_records as usize) {
            let (kind, node, aux, a, b, c) = encode_fields(&te.event);
            out.push(kind);
            out.push(node);
            out.extend_from_slice(&aux.to_le_bytes());
            out.extend_from_slice(&slot_field(te.slot).to_le_bytes());
            out.extend_from_slice(&f32_field(te.t_s).to_le_bytes());
            out.extend_from_slice(&a.to_le_bytes());
            out.extend_from_slice(&b.to_le_bytes());
            out.extend_from_slice(&c.to_le_bytes());
        }
    }
    out
}

/// One decoded record: the originating run plus the reconstructed
/// timed event (payloads widened from their `f32` storage).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinRecord {
    /// Run id of the section the record came from.
    pub run: u32,
    /// Slot index the event occurred in.
    pub slot: u32,
    /// Simulation time, seconds (stored as `f32`).
    pub t_s: f32,
    /// The reconstructed event.
    pub event: Event,
}

fn read_u16(bytes: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([bytes[at], bytes[at + 1]])
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
}

fn read_f32(bytes: &[u8], at: usize) -> f32 {
    f32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
}

/// Reassemble an [`Event`] from record fields. `None` for an unknown
/// kind code or fault-kind index (a newer writer, or corruption).
fn decode_fields(kind: u8, node: u8, aux: u16, a: f32, b: f32, c: f32) -> Option<Event> {
    let node_or_zero = if node == NODE_NONE { 0 } else { node };
    Some(match kind {
        KIND_SLOT_START => Event::SlotStart { queries: u32::from(aux) },
        KIND_SLOT_END => Event::SlotEnd {
            duration_s: f64::from(a),
            bits: f32_counter_to_u64(b),
        },
        KIND_DETECTION => Event::Detection {
            node: node_or_zero,
            corr: f64::from(a),
            snr_db: f64::from(b),
        },
        KIND_CRC_FAIL => Event::CrcFail { node: node_or_zero, corr: f64::from(a) },
        KIND_ERASURE => Event::Erasure { node: node_or_zero },
        KIND_RETRY => Event::Retry {
            node: node_or_zero,
            retries_used: u32::from(aux),
        },
        KIND_BACKOFF => Event::Backoff {
            node: node_or_zero,
            until_slot: f32_counter_to_u64(a),
        },
        KIND_QUARANTINE => Event::Quarantine {
            node: node_or_zero,
            until_slot: f32_counter_to_u64(a),
            probes_failed: u32::from(aux),
        },
        KIND_EVICTION => Event::Eviction { node: node_or_zero },
        KIND_RATE_STEP => Event::RateStep {
            node: node_or_zero,
            rate_bps: f64::from(a),
            level: u32::from(aux),
        },
        KIND_FAULT_ENTER => Event::FaultEnter {
            node: node_or_zero,
            kind: fault_kind_from_code(aux)?,
        },
        KIND_FAULT_EXIT => Event::FaultExit {
            node: node_or_zero,
            kind: fault_kind_from_code(aux)?,
        },
        KIND_ENERGY_SAMPLE => Event::EnergySample {
            node: node_or_zero,
            harvested_j: f64::from(a),
            power_w: f64::from(b),
            rectified_v: f64::from(c),
        },
        KIND_COLLISION_SLOT => Event::CollisionSlot {
            participants: u32::from(aux),
            condition_number: f64::from(a),
        },
        KIND_COLLISION_FALLBACK => Event::CollisionFallback {
            participants: u32::from(aux),
            condition_number: f64::from(a),
        },
        KIND_STREAM_VERDICT => Event::StreamVerdict {
            node: node_or_zero,
            crc_ok: aux != 0,
            snr_db: f64::from(a),
        },
        _ => return None,
    })
}

/// Widen a counter that rode in a float field back to `u64`.
fn f32_counter_to_u64(x: f32) -> u64 {
    if x.is_finite() && x > 0.0 {
        x.round() as u64
    } else {
        0
    }
}

/// Decode a buffer produced by [`events_bin`] back into records, in
/// file order. Rejects wrong magic/version, truncated buffers, and
/// unknown kind codes with a static description of the problem.
pub fn decode_events_bin(bytes: &[u8]) -> Result<Vec<BinRecord>, &'static str> {
    if bytes.len() < 12 {
        return Err("truncated header");
    }
    if bytes[..4] != BIN_MAGIC {
        return Err("bad magic");
    }
    if read_u16(bytes, 4) != BIN_VERSION {
        return Err("unsupported version");
    }
    if usize::from(read_u16(bytes, 6)) != BIN_RECORD_LEN {
        return Err("unexpected record length");
    }
    let n_sections = read_u32(bytes, 8);
    let mut at = 12usize;
    let mut out = Vec::new();
    for _ in 0..n_sections {
        if bytes.len() < at + 8 {
            return Err("truncated section header");
        }
        let run = read_u32(bytes, at);
        // lint: allow(lossy-cast) u32 -> usize widens on every supported target
        let n_records = read_u32(bytes, at + 4) as usize;
        at += 8;
        let need = n_records
            .checked_mul(BIN_RECORD_LEN)
            .ok_or("section length overflow")?;
        if bytes.len() < at + need {
            return Err("truncated section body");
        }
        out.reserve(n_records);
        for _ in 0..n_records {
            let kind = bytes[at];
            let node = bytes[at + 1];
            let aux = read_u16(bytes, at + 2);
            let slot = read_u32(bytes, at + 4);
            let t_s = read_f32(bytes, at + 8);
            let a = read_f32(bytes, at + 12);
            let b = read_f32(bytes, at + 16);
            let c = read_f32(bytes, at + 20);
            let event = decode_fields(kind, node, aux, a, b, c).ok_or("unknown event kind")?;
            out.push(BinRecord { run, slot, t_s, event });
            at += BIN_RECORD_LEN;
        }
    }
    if at != bytes.len() {
        return Err("trailing bytes after last section");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FaultKind;

    /// Events whose payloads are exactly representable in `f32`, so the
    /// round trip must be lossless, covering every variant.
    fn sample_recorder(run_id: u64) -> Recorder {
        let mut r = Recorder::new(64).with_run_id(run_id);
        r.begin_slot(0, 0.0);
        r.record(Event::SlotStart { queries: 2 });
        r.record(Event::Detection { node: 1, corr: 0.875, snr_db: 12.5 });
        r.record(Event::CrcFail { node: 2, corr: 0.25 });
        r.record(Event::Erasure { node: 2 });
        r.record(Event::Retry { node: 2, retries_used: 1 });
        r.record(Event::Backoff { node: 2, until_slot: 5 });
        r.record(Event::Quarantine { node: 2, until_slot: 9, probes_failed: 3 });
        r.record(Event::Eviction { node: 2 });
        r.record(Event::RateStep { node: 1, rate_bps: 2048.0, level: 1 });
        r.record(Event::FaultEnter { node: 2, kind: FaultKind::Dropout });
        r.record(Event::FaultExit { node: 2, kind: FaultKind::Dropout });
        r.record(Event::EnergySample {
            node: 1,
            harvested_j: 0.5,
            power_w: 0.25,
            rectified_v: 1.25,
        });
        r.record(Event::CollisionSlot { participants: 2, condition_number: 4.5 });
        r.record(Event::CollisionFallback { participants: 2, condition_number: 80.0 });
        r.record(Event::StreamVerdict { node: 1, crc_ok: true, snr_db: 12.5 });
        r.record(Event::StreamVerdict { node: 2, crc_ok: false, snr_db: -2.5 });
        r.begin_slot(1, 0.25);
        r.record(Event::SlotEnd { duration_s: 0.25, bits: 64 });
        r
    }

    #[test]
    fn round_trip_preserves_every_variant() {
        let rec = sample_recorder(7);
        let bytes = events_bin(&[&rec]);
        assert_eq!(&bytes[..4], &BIN_MAGIC);
        assert_eq!(bytes.len(), 12 + 8 + rec.len() * BIN_RECORD_LEN);
        let records = decode_events_bin(&bytes).expect("decodes");
        assert_eq!(records.len(), rec.len());
        for (rec_out, te) in records.iter().zip(rec.events()) {
            assert_eq!(rec_out.run, 7);
            assert_eq!(u64::from(rec_out.slot), te.slot);
            assert_eq!(f64::from(rec_out.t_s), te.t_s);
            assert_eq!(rec_out.event, te.event, "variant mangled in transit");
        }
    }

    #[test]
    fn multi_recorder_sections_keep_order_and_attribution() {
        let a = sample_recorder(0);
        let b = sample_recorder(1);
        let bytes = events_bin(&[&a, &b]);
        let records = decode_events_bin(&bytes).expect("decodes");
        assert_eq!(records.len(), a.len() + b.len());
        assert!(records[..a.len()].iter().all(|r| r.run == 0));
        assert!(records[a.len()..].iter().all(|r| r.run == 1));
        // Caller order is file order.
        assert_ne!(events_bin(&[&a, &b]), events_bin(&[&b, &a]));
        // Same content, same bytes.
        assert_eq!(events_bin(&[&a, &b]), events_bin(&[&sample_recorder(0), &sample_recorder(1)]));
    }

    #[test]
    fn decode_rejects_malformed_input() {
        let rec = sample_recorder(0);
        let good = events_bin(&[&rec]);
        assert_eq!(decode_events_bin(&good[..8]), Err("truncated header"));
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_eq!(decode_events_bin(&bad_magic), Err("bad magic"));
        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert_eq!(decode_events_bin(&bad_version), Err("unsupported version"));
        let mut bad_kind = good.clone();
        bad_kind[12 + 8] = 200;
        assert_eq!(decode_events_bin(&bad_kind), Err("unknown event kind"));
        assert_eq!(
            decode_events_bin(&good[..good.len() - 1]),
            Err("truncated section body")
        );
        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(decode_events_bin(&trailing), Err("trailing bytes after last section"));
    }

    #[test]
    fn saturating_fields_stay_in_range() {
        let mut r = Recorder::new(8).with_run_id(u64::MAX);
        r.begin_slot(u64::MAX, 1.0e9);
        r.record(Event::Backoff { node: 3, until_slot: u64::MAX });
        r.record(Event::Retry { node: 3, retries_used: u32::MAX });
        let bytes = events_bin(&[&r]);
        let records = decode_events_bin(&bytes).expect("decodes");
        assert_eq!(records[0].run, u32::MAX);
        assert_eq!(records[0].slot, u32::MAX);
        match records[0].event {
            Event::Backoff { until_slot, .. } => assert!(until_slot > 0),
            ref other => panic!("wrong variant: {other:?}"),
        }
        match records[1].event {
            Event::Retry { retries_used, .. } => assert_eq!(retries_used, u32::from(u16::MAX)),
            ref other => panic!("wrong variant: {other:?}"),
        }
    }
}
