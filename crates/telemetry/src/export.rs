//! Exporters: flatten one or more recorders into CSV / JSONL text.
//!
//! Output is a pure function of the recorder contents and the order in
//! which recorders are passed. The sweep engine passes per-point recorders
//! in point-index order, which is the whole byte-identity argument for
//! parallel vs serial runs: nothing here ever consults a clock, a thread
//! id, or a hash map with randomized iteration order.

use crate::event::Event;
use crate::fmt_f64;
use crate::recorder::Recorder;

/// Column header of [`events_csv`]. Every event type writes the columns
/// it has and leaves the rest empty, so the one file is directly
/// plottable per event type without a join.
pub const EVENTS_CSV_HEADER: &str = "run,slot,t_s,node,event,detail,corr,snr_db,rate_bps,until_slot,duration_s,bits,harvested_j,power_w,rectified_v,condition";

/// Per-event columns beyond the common prefix:
/// `(detail, corr, snr_db, rate_bps, until_slot, duration_s, bits, harvested_j, power_w, rectified_v, condition)`
/// — any of which may be empty.
fn event_columns(event: &Event) -> [String; 11] {
    let mut cols: [String; 11] = Default::default();
    match *event {
        Event::SlotStart { queries } => cols[0] = queries.to_string(),
        Event::SlotEnd { duration_s, bits } => {
            cols[5] = fmt_f64(duration_s);
            cols[6] = bits.to_string();
        }
        Event::Detection { corr, snr_db, .. } => {
            cols[1] = fmt_f64(corr);
            cols[2] = fmt_f64(snr_db);
        }
        Event::CrcFail { corr, .. } => cols[1] = fmt_f64(corr),
        Event::Erasure { .. } | Event::Eviction { .. } => {}
        Event::Retry { retries_used, .. } => cols[0] = retries_used.to_string(),
        Event::Backoff { until_slot, .. } => cols[4] = until_slot.to_string(),
        Event::Quarantine { until_slot, probes_failed, .. } => {
            cols[0] = probes_failed.to_string();
            cols[4] = until_slot.to_string();
        }
        Event::RateStep { rate_bps, level, .. } => {
            cols[0] = level.to_string();
            cols[3] = fmt_f64(rate_bps);
        }
        Event::FaultEnter { kind, .. } | Event::FaultExit { kind, .. } => {
            cols[0] = kind.name().to_string();
        }
        Event::EnergySample { harvested_j, power_w, rectified_v, .. } => {
            cols[7] = fmt_f64(harvested_j);
            cols[8] = fmt_f64(power_w);
            cols[9] = fmt_f64(rectified_v);
        }
        Event::CollisionSlot { participants, condition_number }
        | Event::CollisionFallback { participants, condition_number } => {
            cols[0] = participants.to_string();
            cols[10] = fmt_f64(condition_number);
        }
        Event::StreamVerdict { crc_ok, snr_db, .. } => {
            cols[0] = u8::from(crc_ok).to_string();
            cols[2] = fmt_f64(snr_db);
        }
    }
    cols
}

/// Render every retained event of every recorder as CSV, recorder order
/// then event (recording) order. Header included.
pub fn events_csv(recorders: &[&Recorder]) -> String {
    let mut out = String::with_capacity(
        EVENTS_CSV_HEADER.len() + 1 + recorders.iter().map(|r| r.len() * 48).sum::<usize>(),
    );
    out.push_str(EVENTS_CSV_HEADER);
    out.push('\n');
    for rec in recorders {
        for te in rec.events() {
            let node = te.event.node().map(|n| n.to_string()).unwrap_or_default();
            let extra = event_columns(&te.event);
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                rec.run_id(),
                te.slot,
                fmt_f64(te.t_s),
                node,
                te.event.name(),
                extra.join(","),
            ));
        }
    }
    out
}

/// Format an `f64` as a JSON value: plain number when finite, quoted
/// string otherwise (JSON has no NaN/Infinity literals).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        fmt_f64(x)
    } else {
        format!("\"{}\"", fmt_f64(x))
    }
}

/// Render every retained event as one JSON object per line, with only the
/// fields that event carries. Key order is fixed per event type, so the
/// output is byte-stable.
pub fn events_jsonl(recorders: &[&Recorder]) -> String {
    let mut out = String::new();
    for rec in recorders {
        for te in rec.events() {
            out.push_str(&format!(
                "{{\"run\":{},\"slot\":{},\"t_s\":{},\"event\":\"{}\"",
                rec.run_id(),
                te.slot,
                json_f64(te.t_s),
                te.event.name(),
            ));
            if let Some(node) = te.event.node() {
                out.push_str(&format!(",\"node\":{node}"));
            }
            match te.event {
                Event::SlotStart { queries } => out.push_str(&format!(",\"queries\":{queries}")),
                Event::SlotEnd { duration_s, bits } => out.push_str(&format!(
                    ",\"duration_s\":{},\"bits\":{bits}",
                    json_f64(duration_s)
                )),
                Event::Detection { corr, snr_db, .. } => out.push_str(&format!(
                    ",\"corr\":{},\"snr_db\":{}",
                    json_f64(corr),
                    json_f64(snr_db)
                )),
                Event::CrcFail { corr, .. } => {
                    out.push_str(&format!(",\"corr\":{}", json_f64(corr)))
                }
                Event::Erasure { .. } | Event::Eviction { .. } => {}
                Event::Retry { retries_used, .. } => {
                    out.push_str(&format!(",\"retries_used\":{retries_used}"))
                }
                Event::Backoff { until_slot, .. } => {
                    out.push_str(&format!(",\"until_slot\":{until_slot}"))
                }
                Event::Quarantine { until_slot, probes_failed, .. } => out.push_str(&format!(
                    ",\"until_slot\":{until_slot},\"probes_failed\":{probes_failed}"
                )),
                Event::RateStep { rate_bps, level, .. } => out.push_str(&format!(
                    ",\"rate_bps\":{},\"level\":{level}",
                    json_f64(rate_bps)
                )),
                Event::FaultEnter { kind, .. } => {
                    out.push_str(&format!(",\"kind\":\"{}\"", kind.name()))
                }
                Event::FaultExit { kind, .. } => {
                    out.push_str(&format!(",\"kind\":\"{}\"", kind.name()))
                }
                Event::EnergySample { harvested_j, power_w, rectified_v, .. } => {
                    out.push_str(&format!(
                        ",\"harvested_j\":{},\"power_w\":{},\"rectified_v\":{}",
                        json_f64(harvested_j),
                        json_f64(power_w),
                        json_f64(rectified_v)
                    ))
                }
                Event::CollisionSlot { participants, condition_number }
                | Event::CollisionFallback { participants, condition_number } => {
                    out.push_str(&format!(
                        ",\"participants\":{participants},\"condition_number\":{}",
                        json_f64(condition_number)
                    ))
                }
                Event::StreamVerdict { crc_ok, snr_db, .. } => out.push_str(&format!(
                    ",\"crc_ok\":{crc_ok},\"snr_db\":{}",
                    json_f64(snr_db)
                )),
            }
            out.push_str("}\n");
        }
    }
    out
}

/// Column header of [`summary_csv`].
pub const SUMMARY_CSV_HEADER: &str = "run,kind,name,value";

/// Render the aggregate half of each recorder — counters, ring-overflow
/// and clock accounting, histogram statistics and per-bucket counts — as
/// `run,kind,name,value` rows in a fixed order.
pub fn summary_csv(recorders: &[&Recorder]) -> String {
    let mut out = String::from(SUMMARY_CSV_HEADER);
    out.push('\n');
    for rec in recorders {
        let run = rec.run_id();
        out.push_str(&format!("{run},meta,events_dropped,{}\n", rec.events_dropped()));
        out.push_str(&format!("{run},meta,events_retained,{}\n", rec.len()));
        out.push_str(&format!("{run},meta,clock_regressions,{}\n", rec.clock_regressions()));
        for (name, v) in rec.counters().iter() {
            out.push_str(&format!("{run},counter,{name},{v}\n"));
        }
        for (name, h) in rec.histograms() {
            out.push_str(&format!("{run},hist,{name}.lo,{}\n", fmt_f64(h.lo())));
            out.push_str(&format!("{run},hist,{name}.hi,{}\n", fmt_f64(h.hi())));
            out.push_str(&format!("{run},hist,{name}.total,{}\n", h.total()));
            out.push_str(&format!("{run},hist,{name}.mean,{}\n", fmt_f64(h.mean())));
            out.push_str(&format!("{run},hist,{name}.underflow,{}\n", h.underflow()));
            out.push_str(&format!("{run},hist,{name}.overflow,{}\n", h.overflow()));
            for (i, c) in h.bucket_counts().iter().enumerate() {
                out.push_str(&format!("{run},hist,{name}.bucket{i},{c}\n"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FaultKind;

    fn sample_recorder(run_id: u64) -> Recorder {
        let mut r = Recorder::new(64).with_run_id(run_id);
        r.begin_slot(0, 0.0);
        r.record(Event::SlotStart { queries: 2 });
        r.record(Event::Detection { node: 1, corr: 0.875, snr_db: 12.5 });
        r.record(Event::FaultEnter { node: 2, kind: FaultKind::Dropout });
        r.record(Event::Erasure { node: 2 });
        r.record(Event::Quarantine { node: 2, until_slot: 9, probes_failed: 0 });
        r.record(Event::RateStep { node: 1, rate_bps: 2048.0, level: 1 });
        r.record(Event::EnergySample {
            node: 1,
            harvested_j: 2.5e-6,
            power_w: 1e-5,
            rectified_v: 1.25,
        });
        r.record(Event::CollisionSlot { participants: 2, condition_number: 4.5 });
        r.record(Event::StreamVerdict { node: 1, crc_ok: true, snr_db: 14.5 });
        r.record(Event::CollisionFallback { participants: 2, condition_number: 80.0 });
        r.begin_slot(1, 0.25);
        r.record(Event::SlotEnd { duration_s: 0.25, bits: 64 });
        r.observe("snr_db", 0.0, 30.0, 6, 12.5);
        r
    }

    #[test]
    fn csv_shape_and_determinism() {
        let a = sample_recorder(0);
        let b = sample_recorder(0);
        let csv = events_csv(&[&a]);
        assert_eq!(csv, events_csv(&[&b]), "same content => same bytes");
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(EVENTS_CSV_HEADER));
        let cols = EVENTS_CSV_HEADER.split(',').count();
        for line in lines {
            assert_eq!(line.split(',').count(), cols, "ragged row: {line}");
        }
        assert!(csv.contains("0,0,0,1,detection,,0.875,12.5,,,,,,,"));
        assert!(csv.contains("0,0,0,2,fault_enter,dropout,,,,,,,,,"));
        assert!(csv.contains("0,0,0,1,rate_step,1,,,2048,,,,,,"));
        assert!(csv.contains("0,1,0.25,,slot_end,,,,,,0.25,64,,,,"));
        assert!(csv.contains("0,0,0,,collision_slot,2,,,,,,,,,,4.5"));
        assert!(csv.contains("0,0,0,1,stream_verdict,1,,14.5,,,,,,,,"));
        assert!(csv.contains("0,0,0,,collision_fallback,2,,,,,,,,,,80"));
    }

    #[test]
    fn jsonl_lines_are_balanced_objects() {
        let a = sample_recorder(3);
        let jsonl = events_jsonl(&[&a]);
        assert_eq!(jsonl.lines().count(), a.len());
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert_eq!(
                line.matches('{').count(),
                line.matches('}').count(),
                "unbalanced braces: {line}"
            );
            assert!(line.contains("\"run\":3"));
        }
        assert!(jsonl.contains("\"event\":\"energy_sample\""));
        assert!(jsonl.contains("\"harvested_j\":0.0000025"));
        assert!(jsonl.contains("\"event\":\"collision_slot\",\"participants\":2,\"condition_number\":4.5"));
        assert!(jsonl.contains("\"event\":\"stream_verdict\",\"node\":1,\"crc_ok\":true,\"snr_db\":14.5"));
        assert!(jsonl.contains("\"event\":\"collision_fallback\""));
    }

    #[test]
    fn recorder_order_is_export_order() {
        let a = sample_recorder(0);
        let b = sample_recorder(1);
        let ab = events_csv(&[&a, &b]);
        let ba = events_csv(&[&b, &a]);
        assert_ne!(ab, ba, "caller-supplied order must be honored");
        let first_data_row = ab.lines().nth(1).unwrap();
        assert!(first_data_row.starts_with("0,"), "run 0 first");
    }

    #[test]
    fn summary_covers_counters_and_histograms() {
        let a = sample_recorder(0);
        let s = summary_csv(&[&a]);
        assert!(s.starts_with(SUMMARY_CSV_HEADER));
        assert!(s.contains("0,meta,events_dropped,0\n"));
        assert!(s.contains("0,counter,detection,1\n"));
        assert!(s.contains("0,hist,snr_db.total,1\n"));
        assert!(s.contains("0,hist,snr_db.bucket2,1\n"), "12.5 in [10,15) of 6x5-wide: {s}");
    }
}
