//! Property-based tests for the analog front end: conservation laws and
//! matching optimality must hold for arbitrary (plausible) components.

use num_complex::Complex64;
use pab_analog::impedance::{available_power_w, delivered_power_w};
use pab_analog::{Ldo, MatchingNetwork, MultiStageRectifier, RectoPiezo, Supercap};
use pab_piezo::{Transducer, TransducerBuilder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The analytic L-match achieves the source's available power (the
    /// conjugate-match bound) whenever it is designable.
    #[test]
    fn lmatch_achieves_available_power_w(
        rs in 1.0f64..4_000.0,
        xs in -5_000.0f64..5_000.0,
        r_load in 10.0f64..100_000.0,
        f in 5_000.0f64..50_000.0,
    ) {
        prop_assume!(rs < r_load);
        let zs = Complex64::new(rs, xs);
        let m = MatchingNetwork::design(zs, f, r_load).unwrap();
        let got = m.delivered_power_w(1.0, zs, f, r_load);
        let bound = available_power_w(1.0, zs);
        prop_assert!(got <= bound * (1.0 + 1e-6));
        prop_assert!(got >= bound * (1.0 - 1e-6), "got {got} of {bound}");
    }

    /// No load ever extracts more than the available power (passivity of
    /// the matching analysis).
    #[test]
    fn no_load_beats_available_power_w(
        rs in 1.0f64..4_000.0,
        xs in -5_000.0f64..5_000.0,
        r_load in 1.0f64..1e6,
        l in 1e-6f64..1.0,
        c in 1e-12f64..1e-5,
        f in 5_000.0f64..50_000.0,
    ) {
        let zs = Complex64::new(rs, xs);
        let m = MatchingNetwork::new(
            pab_analog::matching::SeriesElement::Inductor(l),
            c,
        ).unwrap();
        let got = m.delivered_power_w(1.0, zs, f, r_load);
        prop_assert!(got <= available_power_w(1.0, zs) * (1.0 + 1e-9));
        // Direct (unmatched) connection obeys the same bound.
        let direct = delivered_power_w(1.0, zs, Complex64::new(r_load, 0.0));
        prop_assert!(direct <= available_power_w(1.0, zs) * (1.0 + 1e-9));
    }

    /// Rectifier: output is monotone in drive, zero below the dead zone,
    /// and never violates the efficiency cap.
    #[test]
    fn rectifier_monotone_and_conservative(
        stages in 1usize..6,
        drop in 0.05f64..0.5,
        v1 in 0.0f64..5.0,
        dv in 0.0f64..5.0,
        r_load in 100.0f64..1e6,
    ) {
        let r = MultiStageRectifier::new(stages, drop, 20_000.0, 8_000.0).unwrap();
        let lo = r.dc_into_load_v(v1, r_load);
        let hi = r.dc_into_load_v(v1 + dv, r_load);
        prop_assert!(hi >= lo - 1e-12);
        prop_assert_eq!(r.dc_into_load_v(drop * 0.99, r_load), 0.0);
        let p_in = (v1 + dv).powi(2) / (2.0 * r.input_resistance_ohms);
        let p_out = hi * hi / r_load;
        prop_assert!(p_out <= r.max_efficiency * p_in + 1e-15);
    }

    /// Supercap: voltage never goes negative and never overshoots the
    /// charging source.
    #[test]
    fn supercap_stays_physical(
        v_src in 0.0f64..10.0,
        r_src in 100.0f64..100_000.0,
        i_load in 0.0f64..5e-3,
        steps in 1usize..5_000,
    ) {
        let mut c = Supercap::pab_node();
        for _ in 0..steps {
            c.step(v_src, r_src, i_load, 1e-3);
            prop_assert!(c.voltage_v() >= 0.0);
            prop_assert!(c.voltage_v() <= v_src.max(0.0) + 1e-9);
        }
    }

    /// LDO: output never exceeds the regulation setpoint nor the input.
    #[test]
    fn ldo_output_bounded(vin in 0.0f64..12.0) {
        let ldo = Ldo::lp5900_1v8();
        let vout = ldo.vout_v(vin);
        prop_assert!(vout <= ldo.output_v + 1e-12);
        prop_assert!(vout <= vin.max(0.0) + 1e-12);
        prop_assert!(vout >= 0.0);
    }

    /// Recto-piezo: the rectified voltage is maximal near the match
    /// frequency relative to far-out-of-band drive, for any match choice
    /// within the ceramic's usable range.
    #[test]
    fn rectopiezo_prefers_its_match_band(f_match in 13_000.0f64..19_000.0) {
        let fe = RectoPiezo::design(Transducer::pab_node(), f_match).unwrap();
        let near = fe.rectified_voltage_v(1_000.0, f_match, 1e6);
        let far_lo = fe.rectified_voltage_v(1_000.0, 5_000.0, 1e6);
        let far_hi = fe.rectified_voltage_v(1_000.0, 60_000.0, 1e6);
        prop_assert!(near > far_lo, "near {near} vs {far_lo}");
        prop_assert!(near > far_hi, "near {near} vs {far_hi}");
    }

    /// Backscatter gains are passive for any transducer/load state.
    #[test]
    fn backscatter_gains_passive(
        f_match in 13_000.0f64..19_000.0,
        freq in 8_000.0f64..30_000.0,
        q in 1.5f64..20.0,
    ) {
        let t = TransducerBuilder::new().q(q).build().unwrap();
        let fe = RectoPiezo::design(t, f_match).unwrap();
        for state in [
            pab_analog::SwitchState::Reflective,
            pab_analog::SwitchState::Absorptive,
        ] {
            let g = fe.backscatter_gain(state, freq);
            prop_assert!(g.norm() <= 1.0 + 1e-9, "{state:?}: {}", g.norm());
        }
        prop_assert!(fe.modulation_depth(freq) <= 2.0 + 1e-9);
    }
}
