//! Complex impedance algebra for the front-end circuit analysis.

use num_complex::Complex64;
use std::f64::consts::TAU;

/// Impedance of an inductor `l_henries` at `freq_hz`.
pub fn inductor(l_henries: f64, freq_hz: f64) -> Complex64 {
    Complex64::new(0.0, TAU * freq_hz * l_henries)
}

/// Impedance of a capacitor `c_farads` at `freq_hz`.
pub fn capacitor(c_farads: f64, freq_hz: f64) -> Complex64 {
    Complex64::new(0.0, -1.0 / (TAU * freq_hz * c_farads))
}

/// Impedance of a resistor.
pub fn resistor(r_ohms: f64) -> Complex64 {
    Complex64::new(r_ohms, 0.0)
}

/// Series combination.
pub fn series(a: Complex64, b: Complex64) -> Complex64 {
    a + b
}

/// Parallel combination. Returns zero if either branch is zero.
pub fn parallel(a: Complex64, b: Complex64) -> Complex64 {
    let denom = a + b;
    if denom.norm() == 0.0 {
        Complex64::new(0.0, 0.0)
    } else {
        a * b / denom
    }
}

/// Power (watts) delivered to load `z_load` by a source with open-circuit
/// voltage amplitude `voc_volts` and impedance `z_source`.
pub fn delivered_power_w(voc_volts: f64, z_source: Complex64, z_load: Complex64) -> f64 {
    let total = z_source + z_load;
    if total.norm() == 0.0 {
        return 0.0;
    }
    let i = voc_volts / total.norm();
    0.5 * i * i * z_load.re
}

/// Maximum available power from a source (delivered under conjugate
/// match): `Voc² / (8 Rs)`.
pub fn available_power_w(voc_volts: f64, z_source: Complex64) -> f64 {
    if z_source.re <= 0.0 {
        return 0.0;
    }
    voc_volts * voc_volts / (8.0 * z_source.re)
}

/// Mismatch efficiency: delivered / available power, in `[0, 1]`.
// lint: unitless power ratio delivered/available, in [0, 1]
pub fn mismatch_efficiency(z_source: Complex64, z_load: Complex64) -> f64 {
    if z_source.re <= 0.0 || z_load.re <= 0.0 {
        return 0.0;
    }
    let total = z_source + z_load;
    let denom = total.norm_sqr();
    if denom == 0.0 {
        return 0.0;
    }
    4.0 * z_source.re * z_load.re / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_impedances() {
        let zl = inductor(1e-3, 1_000.0);
        assert!((zl.im - TAU * 1.0).abs() < 1e-9);
        let zc = capacitor(1e-6, 1_000.0);
        assert!((zc.im + 1.0 / (TAU * 1e-3)).abs() < 1e-6);
        assert_eq!(resistor(50.0), Complex64::new(50.0, 0.0));
    }

    #[test]
    fn lc_series_resonates() {
        let f0 = 15_000.0;
        let l = 1e-3;
        let c = 1.0 / ((TAU * f0).powi(2) * l);
        let z = series(inductor(l, f0), capacitor(c, f0));
        assert!(z.norm() < 1e-6, "z={z}");
    }

    #[test]
    fn parallel_of_equal_resistors_halves() {
        let z = parallel(resistor(100.0), resistor(100.0));
        assert!((z.re - 50.0).abs() < 1e-12);
        assert_eq!(parallel(resistor(0.0), resistor(0.0)), Complex64::new(0.0, 0.0));
    }

    #[test]
    fn conjugate_match_delivers_available_power_w() {
        let zs = Complex64::new(700.0, 300.0);
        let voc_volts = 2.0;
        let p_matched = delivered_power_w(voc_volts, zs, zs.conj());
        assert!((p_matched - available_power_w(voc_volts, zs)).abs() / p_matched < 1e-9);
        assert!((mismatch_efficiency(zs, zs.conj()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mismatch_reduces_power() {
        let zs = Complex64::new(700.0, 300.0);
        let eff = mismatch_efficiency(zs, resistor(50.0));
        assert!(eff > 0.0 && eff < 1.0);
        assert_eq!(mismatch_efficiency(zs, resistor(0.0)), 0.0);
        assert_eq!(mismatch_efficiency(Complex64::new(0.0, 5.0), resistor(50.0)), 0.0);
    }

    #[test]
    fn degenerate_sources() {
        assert_eq!(available_power_w(1.0, Complex64::new(0.0, 10.0)), 0.0);
        assert_eq!(
            delivered_power_w(1.0, Complex64::new(1.0, 0.0), Complex64::new(-1.0, 0.0)),
            0.0
        );
    }
}
