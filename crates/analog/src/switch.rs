//! The backscatter switch: two series transistors whose middle junction is
//! grounded (§4.2.1, "Backscatter"), toggling the piezo between the
//! short-circuit (reflective) and matched (absorptive) load states.

use crate::AnalogError;
use num_complex::Complex64;

/// The series transistor pair acting as the backscatter switch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackscatterSwitch {
    /// Total on-resistance of the two transistors in series, ohms.
    pub on_resistance_ohms: f64,
    /// Off-state leakage resistance, ohms (effectively open).
    pub off_resistance_ohms: f64,
    /// Gate threshold voltage: the MCU rail must exceed this to drive the
    /// gates (the series/grounded-source design lowers it — footnote 11).
    pub gate_threshold_v: f64,
}

impl BackscatterSwitch {
    /// Construct with validation.
    pub fn new(
        on_resistance_ohms: f64,
        off_resistance_ohms: f64,
        gate_threshold_v: f64,
    ) -> Result<Self, AnalogError> {
        if !(on_resistance_ohms >= 0.0) || !on_resistance_ohms.is_finite() {
            return Err(AnalogError::NonPositive("on_resistance_ohms"));
        }
        if !(off_resistance_ohms > on_resistance_ohms) {
            return Err(AnalogError::NonPositive(
                "off_resistance_ohms (must exceed on_resistance)",
            ));
        }
        if !(gate_threshold_v > 0.0) {
            return Err(AnalogError::NonPositive("gate_threshold_v"));
        }
        Ok(BackscatterSwitch {
            on_resistance_ohms,
            off_resistance_ohms,
            gate_threshold_v,
        })
    }

    /// The node's switch: ~2 Ω on, ~10 MΩ off, 1.0 V gate threshold
    /// (drivable from the 1.8 V rail).
    pub fn pab_node() -> Self {
        BackscatterSwitch {
            on_resistance_ohms: 2.0,
            off_resistance_ohms: 10e6,
            gate_threshold_v: 1.0,
        }
    }

    /// Impedance the switch presents across the piezo terminals when
    /// closed (reflective state): nearly a short.
    pub fn closed_impedance(&self) -> Complex64 {
        Complex64::new(self.on_resistance_ohms, 0.0)
    }

    /// Impedance when open: effectively removed from the circuit.
    pub fn open_impedance(&self) -> Complex64 {
        Complex64::new(self.off_resistance_ohms, 0.0)
    }

    /// Whether a gate drive voltage can actuate the switch.
    pub fn can_actuate(&self, gate_v: f64) -> bool {
        gate_v >= self.gate_threshold_v
    }

    /// Energy to toggle the gate capacitance once: `C_g · V²` (the only
    /// energy backscatter modulation itself costs — the "near-zero power"
    /// of the paper).
    pub fn switching_energy_j(&self, gate_capacitance_f: f64, rail_v: f64) -> f64 {
        gate_capacitance_f.max(0.0) * rail_v * rail_v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_is_nearly_short() {
        let s = BackscatterSwitch::pab_node();
        assert!(s.closed_impedance().norm() < 10.0);
        assert!(s.open_impedance().norm() > 1e6);
    }

    #[test]
    fn rail_actuation() {
        let s = BackscatterSwitch::pab_node();
        assert!(s.can_actuate(1.8));
        assert!(!s.can_actuate(0.5));
    }

    #[test]
    fn switching_energy_is_tiny() {
        let s = BackscatterSwitch::pab_node();
        // 100 pF gate at 1.8 V: ~0.3 nJ per toggle; at 3 kbps (FM0: up to
        // 2 toggles/bit) that is ~2 µW — negligible next to the MCU.
        let e = s.switching_energy_j(100e-12, 1.8);
        assert!(e < 1e-9);
        let p_at_3kbps = e * 2.0 * 3_000.0;
        assert!(p_at_3kbps < 5e-6);
    }

    #[test]
    fn rejects_invalid() {
        assert!(BackscatterSwitch::new(-1.0, 1e6, 1.0).is_err());
        assert!(BackscatterSwitch::new(10.0, 5.0, 1.0).is_err());
        assert!(BackscatterSwitch::new(2.0, 1e6, 0.0).is_err());
    }
}
