//! The LP5900-class low-dropout regulator powering the digital section.
//!
//! §4.2.1: "The capacitor is connected to a low-dropout (LDO) voltage
//! regulator, the LP5900SD, the output of which is 1.8 V." §6.4 notes the
//! LDO draws ~25 µA of quiescent/ground current — one of the reasons
//! measured idle power (124 µW) exceeds the bare MCU datasheet number.

use crate::AnalogError;

/// Behavioural LDO model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ldo {
    /// Regulated output voltage, volts.
    pub output_v: f64,
    /// Dropout voltage, volts: regulation requires `Vin >= Vout + dropout`.
    pub dropout_v: f64,
    /// Quiescent (ground) current, amps.
    pub quiescent_a: f64,
}

impl Ldo {
    /// Construct with validation.
    pub fn new(output_v: f64, dropout_v: f64, quiescent_a: f64) -> Result<Self, AnalogError> {
        if !(output_v > 0.0) {
            return Err(AnalogError::NonPositive("output_v"));
        }
        if !(dropout_v >= 0.0) || !dropout_v.is_finite() {
            return Err(AnalogError::NonPositive("dropout_v"));
        }
        if !(quiescent_a >= 0.0) || !quiescent_a.is_finite() {
            return Err(AnalogError::NonPositive("quiescent_a"));
        }
        Ok(Ldo {
            output_v,
            dropout_v,
            quiescent_a,
        })
    }

    /// The node's LP5900SD-1.8: 1.8 V out, ~0.1 V dropout, 25 µA ground
    /// current at the node's operating point.
    pub fn lp5900_1v8() -> Self {
        Ldo {
            output_v: 1.8,
            dropout_v: 0.1,
            quiescent_a: 25e-6,
        }
    }

    /// Whether the regulator is in regulation at input voltage `vin_v`.
    pub fn in_regulation(&self, vin_v: f64) -> bool {
        vin_v >= self.output_v + self.dropout_v
    }

    /// Output voltage for a given input: regulated when possible, tracking
    /// (input minus dropout, floored at 0) when not.
    pub fn vout_v(&self, vin_v: f64) -> f64 {
        if self.in_regulation(vin_v) {
            self.output_v
        } else {
            (vin_v - self.dropout_v).max(0.0)
        }
    }

    /// Input current drawn from the storage capacitor when the load draws
    /// `i_load_a` at the output (LDO is a linear pass device: input current =
    /// load current + quiescent).
    pub fn input_current_a(&self, i_load_a: f64) -> f64 {
        i_load_a.max(0.0) + self.quiescent_a
    }

    /// Power dissipated inside the regulator at `vin_v` with load `i_load_a`.
    pub fn dissipation_w(&self, vin_v: f64, i_load_a: f64) -> f64 {
        let vout = self.vout_v(vin_v);
        ((vin_v - vout) * i_load_a.max(0.0) + vin_v * self.quiescent_a).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regulates_above_dropout() {
        let ldo = Ldo::lp5900_1v8();
        assert!(ldo.in_regulation(2.1));
        assert_eq!(ldo.vout_v(2.1), 1.8);
        assert_eq!(ldo.vout_v(3.3), 1.8);
    }

    #[test]
    fn tracks_below_dropout() {
        let ldo = Ldo::lp5900_1v8();
        assert!(!ldo.in_regulation(1.5));
        assert!((ldo.vout_v(1.5) - 1.4).abs() < 1e-12);
        assert_eq!(ldo.vout_v(0.05), 0.0);
    }

    #[test]
    fn input_current_adds_quiescent() {
        let ldo = Ldo::lp5900_1v8();
        assert!((ldo.input_current_a(230e-6) - 255e-6).abs() < 1e-12);
        assert!((ldo.input_current_a(-5.0) - 25e-6).abs() < 1e-18);
    }

    #[test]
    fn node_power_budget_matches_paper_ballpark() {
        // §6.4: MCU active ≈ 230 µA, LDO ≈ 25 µA, at Vin = 2.1 V the total
        // should be within ~7% of 500 µW ballpark (paper's backscatter
        // figure). Total input power = Vin · (I_load + Iq).
        let ldo = Ldo::lp5900_1v8();
        let p = 2.1 * ldo.input_current_a(230e-6);
        assert!((p - 535e-6).abs() < 40e-6, "p={p}");
    }

    #[test]
    fn dissipation_nonnegative() {
        let ldo = Ldo::lp5900_1v8();
        assert!(ldo.dissipation_w(2.1, 230e-6) > 0.0);
        assert_eq!(ldo.dissipation_w(0.0, 0.0), 0.0);
    }

    #[test]
    fn rejects_invalid() {
        assert!(Ldo::new(0.0, 0.1, 25e-6).is_err());
        assert!(Ldo::new(1.8, -0.1, 25e-6).is_err());
        assert!(Ldo::new(1.8, 0.1, -1.0).is_err());
    }
}
