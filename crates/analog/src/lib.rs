//! # pab-analog — the battery-free analog front end
//!
//! Models every block of the paper's Fig. 5 circuit:
//!
//! * [`impedance`] — complex impedance algebra for Ls, Cs, Rs;
//! * [`matching`] — the L-section impedance matching network soldered
//!   between transducer and rectifier (§4.2.1, "Energy Harvesting");
//! * [`rectifier`] — the multi-stage (Dickson-style) rectifier that
//!   passively amplifies the harvested voltage;
//! * [`storage`] — the 1000 µF supercapacitor and cold-start dynamics;
//! * [`regulator`] — the LP5900 1.8 V low-dropout regulator;
//! * [`switch`] — the series transistor pair that shorts the piezo for the
//!   reflective backscatter state;
//! * [`frontend`] — the **recto-piezo**: transducer + matching + rectifier
//!   assembled into the frequency-tunable energy-harvesting front end of
//!   §3.3.1, with the reflection coefficients of Eq. 2 for both switch
//!   states.
//!
//! Amplitude convention: sinusoid amplitudes are *peak* values; the power
//! carried into a resistance R by amplitude V is `V²/(2R)`.
//!
//! ```
//! use pab_analog::RectoPiezo;
//! use pab_piezo::Transducer;
//!
//! // A recto-piezo electrically matched at 15 kHz harvests best there.
//! let fe = RectoPiezo::design(Transducer::pab_node(), 15_000.0).unwrap();
//! let at_match = fe.rectified_voltage_v(1_000.0, 15_000.0, 1e6);
//! let off_band = fe.rectified_voltage_v(1_000.0, 20_000.0, 1e6);
//! assert!(at_match > 2.5);        // crosses the power-up threshold
//! assert!(at_match > off_band);   // and is channel-selective
//! ```
// `!(x > 0.0)` is used deliberately throughout: unlike `x <= 0.0` it is
// also true for NaN, so one guard rejects non-positive *and* non-numeric
// parameters.
#![allow(clippy::neg_cmp_op_on_partial_ord)]


pub mod frontend;
pub mod impedance;
pub mod matching;
pub mod rectifier;
pub mod regulator;
pub mod storage;
pub mod switch;

pub use frontend::{RectoPiezo, SwitchState};
pub use matching::MatchingNetwork;
pub use rectifier::MultiStageRectifier;
pub use regulator::Ldo;
pub use storage::Supercap;

/// Errors for invalid analog parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalogError {
    /// A parameter that must be positive was not.
    NonPositive(&'static str),
    /// Matching-network numerical design failed to converge.
    MatchingFailed { freq_hz: f64 },
    /// Underlying transducer model rejected its parameters.
    Piezo(pab_piezo::PiezoError),
}

impl std::fmt::Display for AnalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalogError::NonPositive(what) => write!(f, "{what} must be positive"),
            AnalogError::MatchingFailed { freq_hz } => {
                write!(f, "matching design failed at {freq_hz} Hz")
            }
            AnalogError::Piezo(e) => write!(f, "piezo: {e}"),
        }
    }
}

impl std::error::Error for AnalogError {}

impl From<pab_piezo::PiezoError> for AnalogError {
    fn from(e: pab_piezo::PiezoError) -> Self {
        AnalogError::Piezo(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        assert!(AnalogError::NonPositive("cap").to_string().contains("cap"));
        assert!(AnalogError::MatchingFailed { freq_hz: 15e3 }
            .to_string()
            .contains("15000"));
        let e: AnalogError = pab_piezo::PiezoError::NonPositive("q").into();
        assert!(e.to_string().contains("piezo"));
    }
}
