//! The **recto-piezo** front end (§3.3.1): transducer + matching network +
//! multi-stage rectifier, with the backscatter switch across the piezo
//! terminals.
//!
//! The matching network is designed at a chosen `f_match`, which *shifts
//! the front end's resonance*: "we can design different sensors with
//! matching circuits that are optimized to different center frequencies.
//! We call this design recto-piezo." The geometric resonance of the
//! ceramic still acts as an outer band-pass (footnote 5), which is why an
//! 18 kHz-matched recto-piezo on a ~16.5 kHz cylinder shows a narrower,
//! lower usable band than a 15 kHz-matched one (Fig. 3).

use crate::matching::MatchingNetwork;
use crate::rectifier::MultiStageRectifier;
use crate::switch::BackscatterSwitch;
use crate::AnalogError;
use num_complex::Complex64;
use pab_piezo::Transducer;

/// Backscatter modulation state of the node front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchState {
    /// Terminals shorted: strain nulled, incident wave fully reflected
    /// (transmits a '1' in the paper's convention).
    Reflective,
    /// Terminals matched into the harvester: energy absorbed
    /// (transmits a '0'; this is also the harvesting state).
    Absorptive,
}

/// A complete recto-piezo front end.
#[derive(Debug, Clone, PartialEq)]
pub struct RectoPiezo {
    /// The piezoelectric transducer.
    pub transducer: Transducer,
    /// The matching network, designed at `match_frequency_hz`.
    pub matching: MatchingNetwork,
    /// The multi-stage rectifier.
    pub rectifier: MultiStageRectifier,
    /// The backscatter switch.
    pub switch: BackscatterSwitch,
    match_frequency_hz: f64,
    /// Fraction of incident amplitude lost in the backscatter process
    /// (heat/structural losses; §3.2 "the backscatter process is lossy").
    // lint: unitless amplitude fraction in [0, 1]
    pub backscatter_efficiency: f64,
}

impl RectoPiezo {
    /// Design a recto-piezo for `transducer`, electrically matched at
    /// `f_match_hz` into the node's standard rectifier.
    pub fn design(transducer: Transducer, f_match_hz: f64) -> Result<Self, AnalogError> {
        let rectifier = MultiStageRectifier::pab_node();
        let zs = transducer.electrical_impedance(f_match_hz);
        let matching =
            MatchingNetwork::design(zs, f_match_hz, rectifier.input_resistance_ohms)?;
        Ok(RectoPiezo {
            transducer,
            matching,
            rectifier,
            switch: BackscatterSwitch::pab_node(),
            match_frequency_hz: f_match_hz,
            backscatter_efficiency: 0.7,
        })
    }

    /// The frequency the matching network was designed for.
    pub fn match_frequency_hz(&self) -> f64 {
        self.match_frequency_hz
    }

    /// Peak AC voltage amplitude at the rectifier input for an incident
    /// pressure amplitude `pressure_pa` at `freq_hz`.
    pub fn rectifier_input_v(&self, pressure_pa: f64, freq_hz: f64) -> f64 {
        let voc = self
            .transducer
            .receive_open_circuit_v(pressure_pa, freq_hz);
        let gain = self
            .matching
            .load_voltage_gain(
                self.transducer.electrical_impedance(freq_hz),
                freq_hz,
                self.rectifier.input_resistance_ohms,
            )
            .norm();
        voc * gain
    }

    /// Rectified DC voltage into a DC load `dc_load_ohms` for an incident
    /// pressure amplitude at `freq_hz`. This is the quantity Fig. 3 plots.
    pub fn rectified_voltage_v(&self, pressure_pa: f64, freq_hz: f64, dc_load_ohms: f64) -> f64 {
        self.rectifier
            .dc_into_load_v(self.rectifier_input_v(pressure_pa, freq_hz), dc_load_ohms)
    }

    /// DC power harvested into `dc_load_ohms`, watts.
    pub fn harvested_power_w(
        &self,
        pressure_pa: f64,
        freq_hz: f64,
        dc_load_ohms: f64,
    ) -> f64 {
        let v = self.rectified_voltage_v(pressure_pa, freq_hz, dc_load_ohms);
        if dc_load_ohms <= 0.0 {
            0.0
        } else {
            v * v / dc_load_ohms
        }
    }

    /// Electrical load presented to the piezo terminals in each switch
    /// state.
    pub fn load_impedance(&self, state: SwitchState, freq_hz: f64) -> Complex64 {
        match state {
            SwitchState::Reflective => self.switch.closed_impedance(),
            SwitchState::Absorptive => self
                .matching
                .input_impedance(freq_hz, self.rectifier.input_resistance_ohms),
        }
    }

    /// Electrical reflection coefficient (Eq. 2) in a given state.
    pub fn reflection_coefficient(&self, state: SwitchState, freq_hz: f64) -> Complex64 {
        self.transducer
            .reflection_coefficient(self.load_impedance(state, freq_hz), freq_hz)
    }

    /// Amplitude gain from incident pressure to re-radiated (backscattered)
    /// pressure at 1 m, in a given switch state.
    ///
    /// The electrical reflection coefficient only matters to the extent the
    /// wave couples into the electrical domain, so it is weighted by the
    /// squared mechanical response (in and back out of the ceramic) and the
    /// backscatter loss factor.
    pub fn backscatter_gain(&self, state: SwitchState, freq_hz: f64) -> Complex64 {
        let mech = self.transducer.mechanical_response(freq_hz);
        self.reflection_coefficient(state, freq_hz)
            * (mech * mech * self.backscatter_efficiency)
    }

    /// Differential backscatter modulation depth at `freq_hz`:
    /// `|g_reflective − g_absorptive|`. This is the signal amplitude the
    /// hydrophone decodes; it shrinks off-resonance (footnote 6), which is
    /// what caps the usable bitrate in Fig. 8.
    // lint: unitless amplitude difference of two linear gains, in [0, 2]
    pub fn modulation_depth(&self, freq_hz: f64) -> f64 {
        (self.backscatter_gain(SwitchState::Reflective, freq_hz)
            - self.backscatter_gain(SwitchState::Absorptive, freq_hz))
        .norm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node_15k() -> RectoPiezo {
        RectoPiezo::design(Transducer::pab_node(), 15_000.0).unwrap()
    }

    fn node_18k() -> RectoPiezo {
        RectoPiezo::design(Transducer::pab_node(), 18_000.0).unwrap()
    }

    /// Sweep the rectified voltage like Fig. 3 and return (freqs, volts).
    fn fig3_sweep(node: &RectoPiezo, pressure_pa: f64) -> (Vec<f64>, Vec<f64>) {
        let freqs: Vec<f64> = (110..=210).map(|k| k as f64 * 100.0).collect();
        let volts = freqs
            .iter()
            .map(|&f| node.rectified_voltage_v(pressure_pa, f, 1_000_000.0))
            .collect();
        (freqs, volts)
    }

    #[test]
    fn rectified_voltage_peaks_near_match_frequency() {
        let node = node_15k();
        let (freqs, volts) = fig3_sweep(&node, 960.0);
        let (imax, vmax) = volts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &v)| (i, v))
            .unwrap();
        assert!(
            (freqs[imax] - 15_000.0).abs() <= 1_000.0,
            "peak at {} Hz",
            freqs[imax]
        );
        assert!(vmax > 2.5, "peak voltage {vmax}");
    }

    #[test]
    fn eighteen_khz_node_peaks_near_eighteen() {
        let node = node_18k();
        let (freqs, volts) = fig3_sweep(&node, 960.0);
        let (imax, _) = volts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        assert!(
            (freqs[imax] - 18_000.0).abs() <= 1_000.0,
            "peak at {} Hz",
            freqs[imax]
        );
    }

    #[test]
    fn responses_are_complementary_like_fig3() {
        // At 15 kHz the 15k node should beat the 18k node, and vice versa.
        let n15 = node_15k();
        let n18 = node_18k();
        let p = 960.0;
        assert!(
            n15.rectified_voltage_v(p, 15_000.0, 1e6) > n18.rectified_voltage_v(p, 15_000.0, 1e6)
        );
        assert!(
            n18.rectified_voltage_v(p, 18_000.0, 1e6) > n15.rectified_voltage_v(p, 18_000.0, 1e6)
        );
    }

    #[test]
    fn usable_band_is_kilohertz_scale() {
        let node = node_15k();
        let (freqs, volts) = fig3_sweep(&node, 960.0);
        let above: Vec<f64> = freqs
            .iter()
            .zip(&volts)
            .filter(|(_, &v)| v >= 2.5)
            .map(|(&f, _)| f)
            .collect();
        assert!(!above.is_empty());
        let bw = above.last().unwrap() - above.first().unwrap();
        assert!(
            (500.0..5_000.0).contains(&bw),
            "usable bandwidth {bw} Hz outside plausible band"
        );
    }

    #[test]
    fn reflective_state_fully_reflects_electrically() {
        let node = node_15k();
        let g = node.reflection_coefficient(SwitchState::Reflective, 15_000.0);
        assert!(g.norm() > 0.99, "|Γ|={}", g.norm());
    }

    #[test]
    fn absorptive_state_absorbs_at_match() {
        let node = node_15k();
        let g = node.reflection_coefficient(SwitchState::Absorptive, 15_000.0);
        assert!(g.norm() < 0.5, "|Γ|={}", g.norm());
    }

    #[test]
    fn modulation_depth_peaks_in_band_and_decays_off_band() {
        let node = node_15k();
        let at_match = node.modulation_depth(15_000.0);
        let off = node.modulation_depth(21_000.0);
        let far = node.modulation_depth(30_000.0);
        assert!(at_match > off, "{at_match} vs {off}");
        assert!(off > far);
    }

    #[test]
    fn harvested_power_scales_with_pressure_squared() {
        let node = node_15k();
        // Well above the rectifier dead zone, doubling pressure roughly
        // quadruples power.
        let p1 = node.harvested_power_w(1800.0, 15_000.0, 20_000.0);
        let p2 = node.harvested_power_w(3600.0, 15_000.0, 20_000.0);
        assert!(p2 / p1 > 3.0, "ratio {}", p2 / p1);
        assert!(p2 / p1 < 9.0);
    }
}
