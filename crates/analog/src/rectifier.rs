//! Multi-stage (Dickson / voltage-multiplier) rectifier.
//!
//! §4.2.1: "We employ a multi-stage rectifier in order to passively
//! amplify the voltage to the level that is needed for activating the
//! digital components." The envelope-level model here captures what the
//! rest of the system needs: DC output vs input amplitude (with diode
//! drops and output resistance), the effective AC input resistance the
//! matching network is designed against, and conversion efficiency.

use crate::AnalogError;

/// Behavioural model of an N-stage voltage-multiplier rectifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiStageRectifier {
    /// Number of voltage-doubling stages.
    pub stages: usize,
    /// Forward drop of each diode, volts (Schottky ≈ 0.2–0.3 V).
    pub diode_drop_v: f64,
    /// Effective AC input resistance, ohms (what the matching network
    /// sees; set by stage capacitors and switching frequency).
    pub input_resistance_ohms: f64,
    /// Effective DC output resistance, ohms (droop under load).
    pub output_resistance_ohms: f64,
    /// Maximum AC→DC conversion efficiency (energy-conservation cap on the
    /// voltage-multiplier model).
    // lint: unitless power ratio cap in (0, 1]
    pub max_efficiency: f64,
}

impl MultiStageRectifier {
    /// Construct with validation.
    pub fn new(
        stages: usize,
        diode_drop_v: f64,
        input_resistance_ohms: f64,
        output_resistance_ohms: f64,
    ) -> Result<Self, AnalogError> {
        if stages == 0 {
            return Err(AnalogError::NonPositive("stages"));
        }
        if !(diode_drop_v >= 0.0) || !diode_drop_v.is_finite() {
            return Err(AnalogError::NonPositive("diode_drop_v"));
        }
        if !(input_resistance_ohms > 0.0) {
            return Err(AnalogError::NonPositive("input_resistance_ohms"));
        }
        if !(output_resistance_ohms > 0.0) {
            return Err(AnalogError::NonPositive("output_resistance_ohms"));
        }
        Ok(MultiStageRectifier {
            stages,
            diode_drop_v,
            input_resistance_ohms,
            output_resistance_ohms,
            max_efficiency: 0.85,
        })
    }

    /// The PAB node's rectifier: 3 voltage-doubling stages with Schottky
    /// diodes, ~5 kΩ input resistance.
    pub fn pab_node() -> Self {
        MultiStageRectifier {
            stages: 3,
            diode_drop_v: 0.25,
            input_resistance_ohms: 20_000.0,
            output_resistance_ohms: 8_000.0,
            max_efficiency: 0.85,
        }
    }

    /// Unloaded (open-circuit) DC output for an AC input of peak amplitude
    /// `v_peak_v`: `2 N max(0, v_peak_v − v_diode)`.
    pub fn open_circuit_dc_v(&self, v_peak_v: f64) -> f64 {
        2.0 * self.stages as f64 * (v_peak_v - self.diode_drop_v).max(0.0)
    }

    /// DC output when the load draws `i_load_a` amps: droop through the
    /// output resistance, floored at zero.
    pub fn loaded_dc_v(&self, v_peak_v: f64, i_load_a: f64) -> f64 {
        (self.open_circuit_dc_v(v_peak_v) - i_load_a.max(0.0) * self.output_resistance_ohms)
            .max(0.0)
    }

    /// DC output when feeding a resistive DC load `r_load_ohms` (voltage
    /// divider between output resistance and load), capped so output power
    /// never exceeds `max_efficiency` × the AC power accepted at the input.
    pub fn dc_into_load_v(&self, v_peak_v: f64, r_load_ohms: f64) -> f64 {
        if r_load_ohms <= 0.0 {
            return 0.0;
        }
        let v_model =
            self.open_circuit_dc_v(v_peak_v) * r_load_ohms / (r_load_ohms + self.output_resistance_ohms);
        let p_in = v_peak_v * v_peak_v / (2.0 * self.input_resistance_ohms);
        let v_cap = (self.max_efficiency * p_in * r_load_ohms).sqrt();
        v_model.min(v_cap)
    }

    /// AC-to-DC conversion efficiency at input amplitude `v_peak_v` into DC
    /// load `r_load_ohms`: output DC power / input AC power.
    // lint: unitless output/input power ratio in [0, 1]
    pub fn efficiency(&self, v_peak_v: f64, r_load_ohms: f64) -> f64 {
        if v_peak_v <= 0.0 || r_load_ohms <= 0.0 {
            return 0.0;
        }
        let p_in = v_peak_v * v_peak_v / (2.0 * self.input_resistance_ohms);
        if p_in == 0.0 {
            return 0.0;
        }
        let v_out = self.dc_into_load_v(v_peak_v, r_load_ohms);
        let p_out = v_out * v_out / r_load_ohms;
        (p_out / p_in).min(1.0)
    }

    /// Minimum input amplitude that produces any DC output at all (the
    /// rectifier's dead zone — the reason weak signals can't cold-start a
    /// node even though they carry nonzero power).
    pub fn threshold_v(&self) -> f64 {
        self.diode_drop_v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_diode_drop_outputs_nothing() {
        let r = MultiStageRectifier::pab_node();
        assert_eq!(r.open_circuit_dc_v(0.1), 0.0);
        assert_eq!(r.open_circuit_dc_v(0.25), 0.0);
        assert!(r.open_circuit_dc_v(0.3) > 0.0);
    }

    #[test]
    fn output_scales_with_stages() {
        let one = MultiStageRectifier::new(1, 0.25, 5e3, 8e3).unwrap();
        let three = MultiStageRectifier::new(3, 0.25, 5e3, 8e3).unwrap();
        assert!((three.open_circuit_dc_v(1.0) - 3.0 * one.open_circuit_dc_v(1.0)).abs() < 1e-12);
        // 3 stages, 1 V peak: 2·3·0.75 = 4.5 V — the 4 V class of Fig 3.
        assert!((three.open_circuit_dc_v(1.0) - 4.5).abs() < 1e-12);
    }

    #[test]
    fn loading_droops_output() {
        let r = MultiStageRectifier::pab_node();
        let open = r.open_circuit_dc_v(1.5);
        let loaded = r.loaded_dc_v(1.5, 100e-6);
        assert!(loaded < open);
        assert!((open - loaded - 0.8).abs() < 1e-9); // 100 µA × 8 kΩ
        assert_eq!(r.loaded_dc_v(0.3, 1.0), 0.0); // heavy load floors at 0
    }

    #[test]
    fn resistive_load_divider_with_conservation_cap() {
        let r = MultiStageRectifier::pab_node();
        let v = r.dc_into_load_v(1.0, 8_000.0);
        let divider = r.open_circuit_dc_v(1.0) * 8_000.0 / 16_000.0;
        let p_in = 1.0 / (2.0 * r.input_resistance_ohms);
        let cap = (r.max_efficiency * p_in * 8_000.0).sqrt();
        assert!((v - divider.min(cap)).abs() < 1e-12, "v={v}");
        assert_eq!(r.dc_into_load_v(1.0, 0.0), 0.0);
        // With a light (high-resistance) DC load the divider model rules.
        let v_light = r.dc_into_load_v(1.0, 10e6);
        assert!((v_light - r.open_circuit_dc_v(1.0) * 10e6 / (10e6 + 8_000.0)).abs() < 1e-9);
    }

    #[test]
    fn efficiency_bounded_by_cap_and_zero_below_threshold() {
        let r = MultiStageRectifier::pab_node();
        for v in [0.1, 0.3, 0.5, 1.0, 2.0, 5.0] {
            let e = r.efficiency(v, 20_000.0);
            assert!(
                (0.0..=r.max_efficiency + 1e-12).contains(&e),
                "e={e} at v={v}"
            );
        }
        // Deep sub-threshold is zero-efficiency.
        assert_eq!(r.efficiency(0.1, 20_000.0), 0.0);
        // Efficiency never decreases with drive in this regime (allow
        // floating-point slack at the cap plateau).
        assert!(r.efficiency(1.0, 20_000.0) >= r.efficiency(0.4, 20_000.0) - 1e-9);
    }

    #[test]
    fn energy_conservation_cap_limits_light_load_power() {
        let r = MultiStageRectifier::pab_node();
        let v_peak_v = 0.5;
        let p_in = v_peak_v * v_peak_v / (2.0 * r.input_resistance_ohms);
        let v_out = r.dc_into_load_v(v_peak_v, 20_000.0);
        let p_out = v_out * v_out / 20_000.0;
        assert!(p_out <= r.max_efficiency * p_in + 1e-15);
    }

    #[test]
    fn rejects_invalid_construction() {
        assert!(MultiStageRectifier::new(0, 0.25, 5e3, 8e3).is_err());
        assert!(MultiStageRectifier::new(3, -0.1, 5e3, 8e3).is_err());
        assert!(MultiStageRectifier::new(3, 0.25, 0.0, 8e3).is_err());
        assert!(MultiStageRectifier::new(3, 0.25, 5e3, 0.0).is_err());
    }
}
