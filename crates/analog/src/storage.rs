//! The supercapacitor energy store and cold-start dynamics.
//!
//! §4.2.1: "The rectified DC charge is stored in a 1000 µF supercapacitor."
//! The pull-down transistor keeps the decoder path open during cold start
//! so all harvested energy charges the capacitor (§4.2.1, "Decoding").

use crate::AnalogError;

/// A supercapacitor integrating harvested charge and supplying the node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Supercap {
    /// Capacitance, farads.
    pub capacitance_f: f64,
    /// Self-leakage modelled as a parallel resistance, ohms.
    pub leakage_ohms: f64,
    voltage_v: f64,
}

impl Supercap {
    /// New capacitor starting fully discharged.
    pub fn new(capacitance_f: f64, leakage_ohms: f64) -> Result<Self, AnalogError> {
        if !(capacitance_f > 0.0) || !capacitance_f.is_finite() {
            return Err(AnalogError::NonPositive("capacitance_f"));
        }
        if !(leakage_ohms > 0.0) {
            return Err(AnalogError::NonPositive("leakage_ohms"));
        }
        Ok(Supercap {
            capacitance_f,
            leakage_ohms,
            voltage_v: 0.0,
        })
    }

    /// The PAB node's 1000 µF supercapacitor.
    pub fn pab_node() -> Self {
        Supercap {
            capacitance_f: 1_000e-6,
            leakage_ohms: 10e6,
            voltage_v: 0.0,
        }
    }

    /// Current terminal voltage.
    pub fn voltage_v(&self) -> f64 {
        self.voltage_v
    }

    /// Force the terminal voltage (e.g. start a scenario pre-charged).
    pub fn set_voltage(&mut self, volts: f64) {
        self.voltage_v = volts.max(0.0);
    }

    /// Stored energy, joules: `½CV²`.
    pub fn energy_j(&self) -> f64 {
        0.5 * self.capacitance_f * self.voltage_v * self.voltage_v
    }

    /// Advance the capacitor by `dt_s` seconds with a charging source
    /// (`source_v` behind `source_ohms`) and a constant load current draw.
    ///
    /// Uses a forward-Euler step; callers should keep `dt_s` well below the
    /// RC time constants involved (the simulation harness uses 1 ms).
    pub fn step(&mut self, source_v: f64, source_ohms: f64, load_current_a: f64, dt_s: f64) {
        let i_charge = if source_ohms > 0.0 && source_v > self.voltage_v {
            (source_v - self.voltage_v) / source_ohms
        } else {
            0.0
        };
        let i_leak = self.voltage_v / self.leakage_ohms;
        let di = i_charge - i_leak - load_current_a.max(0.0);
        self.voltage_v = (self.voltage_v + di * dt_s / self.capacitance_f).max(0.0);
    }

    /// Time (seconds) to charge from the current voltage to `target_v`
    /// given a Thevenin source, ignoring load and leakage. Returns `None`
    /// if the source can never reach the target.
    pub fn time_to_reach(&self, target_v: f64, source_v: f64, source_ohms: f64) -> Option<f64> {
        if source_v <= target_v {
            return None;
        }
        if self.voltage_v >= target_v {
            return Some(0.0);
        }
        let tau = source_ohms * self.capacitance_f;
        // V(t) = Vs + (V0 - Vs) e^(-t/τ)  ⇒  t = τ ln((Vs-V0)/(Vs-Vt)).
        Some(tau * ((source_v - self.voltage_v) / (source_v - target_v)).ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_toward_source() {
        let mut c = Supercap::pab_node();
        for _ in 0..20_000 {
            c.step(4.0, 8_000.0, 0.0, 1e-3);
        }
        // After 20 s (2.5 τ), should be most of the way to 4 V.
        assert!(c.voltage_v() > 3.5, "v={}", c.voltage_v());
        assert!(c.voltage_v() <= 4.0);
    }

    #[test]
    fn load_discharges() {
        let mut c = Supercap::pab_node();
        c.set_voltage(3.0);
        for _ in 0..1000 {
            c.step(0.0, 8_000.0, 1e-3, 1e-3);
        }
        // 1 mA from 1000 µF for 1 s = 1000 µC = 1 V drop... i.e. down to 2 V.
        assert!((c.voltage_v() - 2.0).abs() < 0.05, "v={}", c.voltage_v());
    }

    #[test]
    fn voltage_never_negative() {
        let mut c = Supercap::pab_node();
        c.set_voltage(0.01);
        for _ in 0..100 {
            c.step(0.0, 8_000.0, 10e-3, 1e-3);
        }
        assert_eq!(c.voltage_v(), 0.0);
    }

    #[test]
    fn energy_formula() {
        let mut c = Supercap::pab_node();
        c.set_voltage(2.0);
        assert!((c.energy_j() - 0.5 * 1e-3 * 4.0).abs() < 1e-12);
    }

    #[test]
    fn time_to_reach_analytical() {
        let c = Supercap::pab_node();
        let t = c.time_to_reach(2.5, 4.0, 8_000.0).unwrap();
        // τ = 8 s; t = 8 ln(4/1.5) ≈ 7.85 s.
        assert!((t - 8.0 * (4.0f64 / 1.5).ln()).abs() < 1e-9);
        assert!(c.time_to_reach(5.0, 4.0, 8_000.0).is_none());
        let mut pre = Supercap::pab_node();
        pre.set_voltage(3.0);
        assert_eq!(pre.time_to_reach(2.5, 4.0, 8_000.0), Some(0.0));
    }

    #[test]
    fn leakage_drains_slowly() {
        let mut c = Supercap::pab_node();
        c.set_voltage(3.0);
        for _ in 0..10_000 {
            c.step(0.0, 8_000.0, 0.0, 1e-3);
        }
        // RC leak constant = 10 MΩ · 1 mF = 10,000 s; 10 s barely moves it.
        assert!(c.voltage_v() > 2.99);
        assert!(c.voltage_v() < 3.0);
    }

    #[test]
    fn rejects_invalid() {
        assert!(Supercap::new(0.0, 1e6).is_err());
        assert!(Supercap::new(1e-3, 0.0).is_err());
    }
}
