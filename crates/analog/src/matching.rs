//! The impedance matching network between transducer and rectifier.
//!
//! The paper (§4.2.1): "we can solder an impedance matching network (which
//! consists of an inductor and a capacitor) between the piezoelectric
//! transducer and the rectifier. The values of inductance and capacitance
//! of the network can be derived from standard circuit equations by
//! substituting the load and source impedances." We implement exactly that
//! analytic L-section design: a shunt capacitor across the rectifier input
//! transforms its resistance down to the source's real part, and a series
//! element cancels the residual reactance (absorbing the transducer's own
//! reactance).
//!
//! The loaded quality factor of the section is `Q = √(R_load/R_s − 1)`, so
//! matching at a frequency where the transducer's series resistance is
//! small produces a *sharp* resonance — this is the physics behind the
//! recto-piezo's tunable, narrow power-up bands in Fig. 3.

use crate::impedance::{capacitor, inductor, parallel, resistor};
use crate::AnalogError;
use num_complex::Complex64;
use std::f64::consts::TAU;

/// The series branch of the L-section: inductor or capacitor depending on
/// the sign of the reactance to be supplied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SeriesElement {
    /// Series inductor, henries.
    Inductor(f64),
    /// Series capacitor, farads.
    Capacitor(f64),
}

impl SeriesElement {
    /// Impedance of the element at `freq_hz`.
    pub fn impedance(&self, freq_hz: f64) -> Complex64 {
        match *self {
            SeriesElement::Inductor(l) => inductor(l, freq_hz),
            SeriesElement::Capacitor(c) => capacitor(c, freq_hz),
        }
    }
}

/// L-section matching network: series element from the source, shunt
/// capacitor across the load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchingNetwork {
    /// Series element (inductor in the common case).
    pub series: SeriesElement,
    /// Shunt capacitance across the load, farads.
    pub shunt_c_farads: f64,
}

impl MatchingNetwork {
    /// Construct with explicit element values.
    pub fn new(series: SeriesElement, shunt_c_farads: f64) -> Result<Self, AnalogError> {
        let val = match series {
            SeriesElement::Inductor(l) => l,
            SeriesElement::Capacitor(c) => c,
        };
        if !(val > 0.0) || !val.is_finite() {
            return Err(AnalogError::NonPositive("series element value"));
        }
        if !(shunt_c_farads > 0.0) || !shunt_c_farads.is_finite() {
            return Err(AnalogError::NonPositive("shunt_c_farads"));
        }
        Ok(MatchingNetwork {
            series,
            shunt_c_farads,
        })
    }

    /// Analytic L-match design: conjugate-match a source of impedance
    /// `z_source` (at `f_match_hz`) into the resistive load `r_load_ohms`.
    ///
    /// Requires `0 < Re(z_source) < r_load_ohms` (the down-transforming
    /// L-section; always true for the PAB transducer into the rectifier's
    /// ~5 kΩ input).
    pub fn design(
        z_source: Complex64,
        f_match_hz: f64,
        r_load_ohms: f64,
    ) -> Result<Self, AnalogError> {
        if !(f_match_hz > 0.0) {
            return Err(AnalogError::NonPositive("f_match_hz"));
        }
        if !(r_load_ohms > 0.0) {
            return Err(AnalogError::NonPositive("r_load_ohms"));
        }
        let rs = z_source.re;
        let xs = z_source.im;
        if !(rs > 0.0) || rs >= r_load_ohms {
            return Err(AnalogError::MatchingFailed { freq_hz: f_match_hz });
        }
        let w = TAU * f_match_hz;
        let q = (r_load_ohms / rs - 1.0).sqrt();
        // Shunt C: transforms r_load_ohms down to rs with residual -j·q·rs.
        let shunt_c = q / (w * r_load_ohms);
        // Series element must supply +j·q·rs and cancel the source's xs.
        let x_el = q * rs - xs;
        let series = if x_el >= 0.0 {
            SeriesElement::Inductor(x_el / w)
        } else {
            SeriesElement::Capacitor(1.0 / (w * (-x_el)))
        };
        // A zero-valued series element degenerates; nudge to a tiny L.
        let series = match series {
            SeriesElement::Inductor(l) if l <= 0.0 => SeriesElement::Inductor(1e-9),
            other => other,
        };
        MatchingNetwork::new(series, shunt_c)
    }

    /// Loaded quality factor of the section when designed for `z_source`
    /// into `r_load_ohms` (`√(R_load/R_s − 1)`).
    // lint: unitless quality factor
    pub fn loaded_q(z_source: Complex64, r_load_ohms: f64) -> f64 {
        if z_source.re <= 0.0 || r_load_ohms <= z_source.re {
            return 0.0;
        }
        (r_load_ohms / z_source.re - 1.0).sqrt()
    }

    /// Complex voltage gain from source open-circuit voltage to the load:
    /// `V_load / Voc = Zp / (Zs + Z_series + Zp)` with
    /// `Zp = Z_shuntC ∥ R_load`.
    pub fn load_voltage_gain(
        &self,
        z_source: Complex64,
        freq_hz: f64,
        r_load_ohms: f64,
    ) -> Complex64 {
        let zp = parallel(capacitor(self.shunt_c_farads, freq_hz), resistor(r_load_ohms));
        let total = z_source + self.series.impedance(freq_hz) + zp;
        if total.norm() == 0.0 {
            return Complex64::new(0.0, 0.0);
        }
        zp / total
    }

    /// Power delivered into `r_load_ohms` for open-circuit amplitude `voc_volts`.
    pub fn delivered_power_w(
        &self,
        voc_volts: f64,
        z_source: Complex64,
        freq_hz: f64,
        r_load_ohms: f64,
    ) -> f64 {
        let v = (self.load_voltage_gain(z_source, freq_hz, r_load_ohms) * voc_volts).norm();
        v * v / (2.0 * r_load_ohms)
    }

    /// Impedance looking into the network + load from the source side —
    /// the load the piezo sees in the absorptive backscatter state.
    pub fn input_impedance(&self, freq_hz: f64, r_load_ohms: f64) -> Complex64 {
        self.series.impedance(freq_hz)
            + parallel(capacitor(self.shunt_c_farads, freq_hz), resistor(r_load_ohms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impedance::available_power_w;
    use pab_piezo::Transducer;

    #[test]
    fn design_achieves_available_power_w() {
        let t = Transducer::pab_node();
        let f0 = 15_000.0;
        let zs = t.electrical_impedance(f0);
        let r_load_ohms = 5_000.0;
        let m = MatchingNetwork::design(zs, f0, r_load_ohms).unwrap();
        let delivered = m.delivered_power_w(1.0, zs, f0, r_load_ohms);
        let avail = available_power_w(1.0, zs);
        assert!(
            (delivered - avail).abs() / avail < 1e-6,
            "delivered {delivered} vs available {avail}"
        );
    }

    #[test]
    fn input_impedance_is_conjugate_at_match() {
        let t = Transducer::pab_node();
        let f0 = 15_000.0;
        let zs = t.electrical_impedance(f0);
        let r_load_ohms = 5_000.0;
        let m = MatchingNetwork::design(zs, f0, r_load_ohms).unwrap();
        let zin = m.input_impedance(f0, r_load_ohms);
        assert!(
            (zin - zs.conj()).norm() / zs.norm() < 1e-6,
            "zin={zin} zs*={}",
            zs.conj()
        );
    }

    #[test]
    fn matched_network_is_band_selective() {
        let t = Transducer::pab_node();
        let f0 = 15_000.0;
        let zs15 = t.electrical_impedance(f0);
        let r_load_ohms = 5_000.0;
        let m = MatchingNetwork::design(zs15, f0, r_load_ohms).unwrap();
        let at_match = m.delivered_power_w(1.0, zs15, f0, r_load_ohms);
        let off = m.delivered_power_w(
            1.0,
            t.electrical_impedance(20_000.0),
            20_000.0,
            r_load_ohms,
        );
        assert!(at_match > 3.0 * off, "at {at_match} vs off {off}");
    }

    #[test]
    fn different_match_frequencies_give_different_networks() {
        let t = Transducer::pab_node();
        let r_load_ohms = 5_000.0;
        let m15 =
            MatchingNetwork::design(t.electrical_impedance(15_000.0), 15_000.0, r_load_ohms)
                .unwrap();
        let m18 =
            MatchingNetwork::design(t.electrical_impedance(18_000.0), 18_000.0, r_load_ohms)
                .unwrap();
        assert_ne!(m15, m18);
    }

    #[test]
    fn loaded_q_grows_with_transform_ratio() {
        let lo = MatchingNetwork::loaded_q(Complex64::new(1_000.0, 0.0), 5_000.0);
        let hi = MatchingNetwork::loaded_q(Complex64::new(20.0, 0.0), 5_000.0);
        assert!(hi > lo);
        assert_eq!(MatchingNetwork::loaded_q(Complex64::new(0.0, 5.0), 5_000.0), 0.0);
        assert_eq!(
            MatchingNetwork::loaded_q(Complex64::new(9_000.0, 0.0), 5_000.0),
            0.0
        );
    }

    #[test]
    fn series_capacitor_branch_used_for_capacitive_requirement() {
        // A strongly inductive source needs a series capacitor to cancel.
        let zs = Complex64::new(100.0, 5_000.0);
        let m = MatchingNetwork::design(zs, 15_000.0, 5_000.0).unwrap();
        assert!(matches!(m.series, SeriesElement::Capacitor(_)));
        // And the match still works.
        let p = m.delivered_power_w(1.0, zs, 15_000.0, 5_000.0);
        assert!((p - available_power_w(1.0, zs)).abs() / p < 1e-6);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(MatchingNetwork::new(SeriesElement::Inductor(0.0), 1e-9).is_err());
        assert!(MatchingNetwork::new(SeriesElement::Inductor(1e-3), -1.0).is_err());
        let zs = Complex64::new(100.0, 0.0);
        assert!(MatchingNetwork::design(zs, 0.0, 100.0).is_err());
        assert!(MatchingNetwork::design(zs, 15e3, 0.0).is_err());
        // Source resistance above load: down-transformer can't match.
        assert!(MatchingNetwork::design(Complex64::new(9e3, 0.0), 15e3, 5e3).is_err());
        // Purely reactive source.
        assert!(MatchingNetwork::design(Complex64::new(0.0, 500.0), 15e3, 5e3).is_err());
    }
}
