//! Property-based tests: the sensor device models must round-trip any
//! plausible water condition through their full wire protocols.

use pab_mcu::peripherals::I2cBus;
use pab_sensors::ph::{nernst_slope_v_per_ph, PhDriver, PhProbe};
use pab_sensors::{Ms5837, Ms5837Driver, WaterSample};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// MS5837: any (T, P) in the sensor's rated range round-trips through
    /// the register protocol + compensation math within datasheet accuracy.
    #[test]
    fn ms5837_roundtrips_rated_range(
        t in -5.0f64..45.0,
        p_mbar in 300.0f64..30_000.0, // up to the 30 bar rating
    ) {
        let water = WaterSample { ph: 7.0, temperature_c: t, pressure_mbar: p_mbar };
        let mut bus = I2cBus::new();
        bus.attach(Box::new(Ms5837::new(water)));
        let r = Ms5837Driver::measure(&mut bus).unwrap();
        prop_assert!((r.temperature_c - t).abs() < 0.05, "T {t} -> {}", r.temperature_c);
        prop_assert!(
            (r.pressure_mbar - p_mbar).abs() < 5.0,
            "P {p_mbar} -> {}",
            r.pressure_mbar
        );
    }

    /// Depth → pressure → implied depth is the identity.
    #[test]
    fn depth_roundtrip(depth in 0.0f64..200.0, rho in 990.0f64..1030.0) {
        let w = WaterSample::at_depth(7.0, 10.0, depth, rho);
        prop_assert!((w.implied_depth_m(rho) - depth).abs() < 1e-9);
    }

    /// pH probe + driver invert each other exactly at matched temperature.
    #[test]
    fn ph_roundtrips(ph in 0.0f64..14.0, t in 0.0f64..40.0) {
        let mut w = WaterSample::bench();
        w.ph = ph;
        w.temperature_c = t;
        let probe = PhProbe::new(w);
        let mut driver = PhDriver::new();
        driver.assumed_temperature_c = t;
        let back = driver.volts_to_ph(probe.afe_output_voltage());
        prop_assert!((back - ph).abs() < 1e-9, "{ph} -> {back}");
    }

    /// The Nernst slope grows with absolute temperature.
    #[test]
    fn nernst_slope_monotone(t1 in -10.0f64..80.0, dt in 0.1f64..50.0) {
        prop_assert!(nernst_slope_v_per_ph(t1 + dt) > nernst_slope_v_per_ph(t1));
    }

    /// The AFE output stays inside the ADC's 0–1.5 V rails for ocean-
    /// plausible water (pH 4–10), so readings are never clipped.
    #[test]
    fn afe_output_within_adc_rails(ph in 4.0f64..10.0, t in 0.0f64..35.0) {
        let mut w = WaterSample::bench();
        w.ph = ph;
        w.temperature_c = t;
        let v = PhProbe::new(w).afe_output_voltage();
        prop_assert!((0.0..=1.5).contains(&v), "v={v}");
    }
}
