//! pH sensing: glass-electrode physics + LMP91200-style analog front end,
//! and the firmware-side conversion back to pH units.
//!
//! A glass pH electrode is a high-impedance voltage source following the
//! Nernst equation: `V = S(T) · (7 − pH)` with
//! `S(T) = ln(10)·R·T/F ≈ 59.16 mV/pH` at 25 °C. The LMP91200 buffers it
//! and level-shifts by a common-mode voltage so the MCU's ADC (0..1.5 V)
//! can sample it (§5.1(c)).

use crate::environment::WaterSample;
use crate::SensorError;
use pab_mcu::{AnalogSource, McuServices};

/// Gas constant, J/(mol·K).
const R: f64 = 8.314_462_618;
/// Faraday constant, C/mol.
const F: f64 = 96_485.332_12;

/// Nernst slope at `temperature_c`, volts per pH unit.
pub fn nernst_slope_v_per_ph(temperature_c: f64) -> f64 {
    let t_k = temperature_c + 273.15;
    (10f64).ln() * R * t_k / F
}

/// The probe + AFE chain: produces the ADC input voltage for given water
/// conditions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhProbe {
    /// Water conditions observed by the probe.
    pub water: WaterSample,
    /// AFE common-mode (level-shift) output at pH 7, volts.
    pub common_mode_v: f64,
    /// AFE gain applied to the electrode voltage.
    pub gain: f64,
    /// Electrode offset error, volts (calibration residual).
    pub offset_error_v: f64,
}

impl PhProbe {
    /// An ideal probe in the given water, with the node's AFE settings.
    pub fn new(water: WaterSample) -> Self {
        PhProbe {
            water,
            common_mode_v: 0.75,
            gain: 1.0,
            offset_error_v: 0.0,
        }
    }

    /// Electrode (pre-AFE) voltage, volts.
    pub fn electrode_voltage(&self) -> f64 {
        nernst_slope_v_per_ph(self.water.temperature_c) * (7.0 - self.water.ph)
            + self.offset_error_v
    }

    /// AFE output voltage presented to the ADC.
    pub fn afe_output_voltage(&self) -> f64 {
        self.common_mode_v + self.gain * self.electrode_voltage()
    }
}

impl AnalogSource for PhProbe {
    fn voltage_at(&mut self, _time_s: f64) -> f64 {
        self.afe_output_voltage()
    }
}

/// Firmware-side conversion: ADC code → pH, mirroring what the node's MCU
/// computes before embedding the reading in a packet (§6.5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhDriver {
    /// Assumed AFE common-mode voltage.
    pub common_mode_v: f64,
    /// Assumed AFE gain.
    pub gain: f64,
    /// Temperature assumed for the Nernst slope (a temperature-compensated
    /// deployment would feed the MS5837 reading in here).
    pub assumed_temperature_c: f64,
}

impl PhDriver {
    /// Driver with the node's nominal AFE configuration.
    pub fn new() -> Self {
        PhDriver {
            common_mode_v: 0.75,
            gain: 1.0,
            assumed_temperature_c: 25.0,
        }
    }

    /// Convert an AFE output voltage to pH.
    pub fn volts_to_ph(&self, afe_volts: f64) -> f64 {
        let electrode_v = (afe_volts - self.common_mode_v) / self.gain;
        7.0 - electrode_v / nernst_slope_v_per_ph(self.assumed_temperature_c)
    }

    /// Sample the MCU's ADC and convert to pH.
    pub fn read(&self, svc: &mut McuServices) -> Result<f64, SensorError> {
        let code = svc.adc_read().ok_or(SensorError::NoAdc)?;
        Ok(self.volts_to_ph(svc.adc_code_to_volts(code)))
    }
}

impl Default for PhDriver {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nernst_slope_at_25c() {
        let s = nernst_slope_v_per_ph(25.0);
        assert!((s - 0.05916).abs() < 1e-4, "s={s}");
    }

    #[test]
    fn neutral_water_reads_common_mode() {
        let probe = PhProbe::new(WaterSample::bench());
        // pH 7 → zero electrode voltage → AFE outputs the common mode.
        assert!((probe.afe_output_voltage() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn acidic_water_raises_voltage() {
        let mut acid = WaterSample::bench();
        acid.ph = 4.0;
        let mut base = WaterSample::bench();
        base.ph = 10.0;
        assert!(PhProbe::new(acid).afe_output_voltage() > 0.75);
        assert!(PhProbe::new(base).afe_output_voltage() < 0.75);
    }

    #[test]
    fn driver_inverts_probe_at_matched_temperature() {
        for ph in [4.0, 5.5, 7.0, 8.2, 10.0] {
            let mut w = WaterSample::bench();
            w.ph = ph;
            w.temperature_c = 25.0;
            let probe = PhProbe::new(w);
            let driver = PhDriver::new();
            let recovered = driver.volts_to_ph(probe.afe_output_voltage());
            assert!((recovered - ph).abs() < 1e-9, "ph={ph} got {recovered}");
        }
    }

    #[test]
    fn temperature_mismatch_causes_small_error() {
        let mut w = WaterSample::bench();
        w.ph = 4.0;
        w.temperature_c = 5.0; // cold water, driver assumes 25 C
        let probe = PhProbe::new(w);
        let recovered = PhDriver::new().volts_to_ph(probe.afe_output_voltage());
        let err = (recovered - 4.0).abs();
        assert!(err > 0.05, "expected visible error, got {err}");
        assert!(err < 0.5, "error implausibly large: {err}");
    }

    #[test]
    fn end_to_end_through_adc() {
        use pab_mcu::{Firmware, Mcu, McuServices, PowerProfile};
        struct Idle;
        impl Firmware for Idle {
            fn on_reset(&mut self, _svc: &mut McuServices) {}
            fn on_edge(&mut self, _svc: &mut McuServices, _r: bool) {}
            fn on_timer(&mut self, _svc: &mut McuServices) {}
        }
        let mut mcu = Mcu::new(Idle, PowerProfile::pab_node());
        mcu.reset();
        let mut w = WaterSample::bench();
        w.temperature_c = 25.0;
        mcu.services.attach_adc_source(Box::new(PhProbe::new(w)));
        let ph = PhDriver::new().read(&mut mcu.services).unwrap();
        // 10-bit ADC quantization allows a small error around pH 7.
        assert!((ph - 7.0).abs() < 0.05, "ph={ph}");
    }
}
