//! # pab-sensors — sensor models for the PAB sensing applications
//!
//! §5.1(c) and §6.5 of the paper integrate three measurements with the
//! node: acidity via a pH mini-probe through an LMP91200-style analog
//! front end into the MCU's ADC, and temperature + pressure via the
//! MS5837-30BA digital sensor over I2C. This crate provides:
//!
//! * [`environment`] — the "true" water conditions a sensor observes;
//! * [`ph`] — Nernst-equation glass-electrode + AFE model
//!   ([`ph::PhProbe`]) and the firmware-side conversion
//!   ([`ph::PhDriver`]);
//! * [`ms5837`] — a register-level MS5837-30BA device model implementing
//!   [`pab_mcu::I2cDevice`] (commands, PROM calibration words, 24-bit
//!   conversions) and the firmware-side driver with the datasheet's
//!   first-order compensation math.
//!
//! ```
//! use pab_mcu::peripherals::I2cBus;
//! use pab_sensors::{Ms5837, Ms5837Driver, WaterSample};
//!
//! // Wire the device model to a bus and run the real protocol.
//! let mut bus = I2cBus::new();
//! bus.attach(Box::new(Ms5837::new(WaterSample::bench())));
//! let reading = Ms5837Driver::measure(&mut bus).unwrap();
//! assert!((reading.pressure_mbar - 1013.25).abs() < 2.0);
//! ```
// `!(x > 0.0)` is used deliberately throughout: unlike `x <= 0.0` it is
// also true for NaN, so one guard rejects non-positive *and* non-numeric
// parameters.
#![allow(clippy::neg_cmp_op_on_partial_ord)]


pub mod environment;
pub mod ms5837;
pub mod ph;

pub use environment::WaterSample;
pub use ms5837::{Ms5837, Ms5837Driver};
pub use ph::{PhDriver, PhProbe};

/// Errors from sensor drivers.
#[derive(Debug, Clone, PartialEq)]
pub enum SensorError {
    /// The I2C transaction failed.
    Bus(pab_mcu::McuError),
    /// A conversion was read before it completed.
    ConversionNotReady,
    /// ADC unavailable (nothing attached).
    NoAdc,
}

impl std::fmt::Display for SensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SensorError::Bus(e) => write!(f, "i2c: {e}"),
            SensorError::ConversionNotReady => write!(f, "conversion not ready"),
            SensorError::NoAdc => write!(f, "no ADC source attached"),
        }
    }
}

impl std::error::Error for SensorError {}

impl From<pab_mcu::McuError> for SensorError {
    fn from(e: pab_mcu::McuError) -> Self {
        SensorError::Bus(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        assert!(SensorError::ConversionNotReady.to_string().contains("ready"));
        assert!(SensorError::NoAdc.to_string().contains("ADC"));
        let e: SensorError = pab_mcu::McuError::I2cNoDevice(0x76).into();
        assert!(e.to_string().contains("i2c"));
    }
}
