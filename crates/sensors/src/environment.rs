//! The ground-truth water conditions a deployed node would measure.

/// Instantaneous water conditions at the node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaterSample {
    /// Acidity, pH units.
    pub ph: f64,
    /// Temperature, degrees Celsius.
    pub temperature_c: f64,
    /// Absolute pressure, millibar.
    pub pressure_mbar: f64,
}

impl WaterSample {
    /// The paper's bench conditions (§6.5): neutral pH 7, room temperature,
    /// atmospheric pressure (~1 bar).
    pub fn bench() -> Self {
        WaterSample {
            ph: 7.0,
            temperature_c: 22.0,
            pressure_mbar: 1_013.25,
        }
    }

    /// Conditions at `depth_m` below the surface: hydrostatic pressure on
    /// top of 1 atm, with `density_kg_m3` water (≈998 fresh, ≈1025 sea).
    pub fn at_depth(ph: f64, temperature_c: f64, depth_m: f64, density_kg_m3: f64) -> Self {
        let hydro_pa = density_kg_m3 * 9.80665 * depth_m.max(0.0);
        WaterSample {
            ph,
            temperature_c,
            pressure_mbar: 1_013.25 + hydro_pa / 100.0,
        }
    }

    /// Depth implied by the pressure reading, meters (inverse of
    /// [`WaterSample::at_depth`]).
    pub fn implied_depth_m(&self, density_kg_m3: f64) -> f64 {
        ((self.pressure_mbar - 1_013.25) * 100.0 / (density_kg_m3 * 9.80665)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_is_one_atmosphere() {
        let s = WaterSample::bench();
        assert!((s.pressure_mbar - 1013.25).abs() < 1e-9);
        assert_eq!(s.ph, 7.0);
    }

    #[test]
    fn ten_meters_is_about_two_atmospheres() {
        let s = WaterSample::at_depth(8.1, 13.0, 10.0, 1025.0);
        assert!((s.pressure_mbar - 2018.0).abs() < 10.0, "{}", s.pressure_mbar);
    }

    #[test]
    fn depth_roundtrips() {
        let s = WaterSample::at_depth(7.0, 20.0, 3.7, 998.0);
        assert!((s.implied_depth_m(998.0) - 3.7).abs() < 1e-9);
        assert_eq!(WaterSample::bench().implied_depth_m(998.0), 0.0);
    }

    #[test]
    fn negative_depth_clamped() {
        let s = WaterSample::at_depth(7.0, 20.0, -5.0, 998.0);
        assert!((s.pressure_mbar - 1013.25).abs() < 1e-9);
    }
}
