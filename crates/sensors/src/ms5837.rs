//! MS5837-30BA waterproof pressure/temperature sensor: a register-level
//! I2C device model plus the firmware-side driver with the datasheet's
//! first-order compensation math.
//!
//! Protocol (per the TE Connectivity datasheet):
//! * `0x1E` reset;
//! * `0xA0 + 2k` read 16-bit PROM calibration word `C[k]` (k = 0..6);
//! * `0x40`/`0x50` (+OSR offset) start a D1 (pressure) / D2 (temperature)
//!   conversion;
//! * `0x00` read the 24-bit ADC result.
//!
//! Compensation (30BA variant, first order):
//! ```text
//! dT   = D2 − C5·2⁸              TEMP = 2000 + dT·C6/2²³      [0.01 °C]
//! OFF  = C2·2¹⁶ + C4·dT/2⁷       SENS = C1·2¹⁵ + C3·dT/2⁸
//! P    = (D1·SENS/2²¹ − OFF)/2¹³                              [0.1 mbar]
//! ```
//! The device model *inverts* these equations to synthesise D1/D2 from the
//! true water conditions, so the driver's forward math is genuinely
//! exercised.

use crate::environment::WaterSample;
use crate::SensorError;
use pab_mcu::peripherals::I2cBus;
use pab_mcu::{I2cDevice, I2cError};

/// 7-bit I2C address of the MS5837.
pub const MS5837_ADDR: u8 = 0x76;

/// Typical factory calibration words (C0 is the CRC/factory word).
pub const DEFAULT_PROM: [u16; 7] = [0x0000, 34_982, 36_352, 20_328, 22_354, 26_646, 26_146];

/// Conversion time for the highest oversampling ratio, seconds.
pub const CONVERSION_TIME_S: f64 = 0.02;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pending {
    None,
    D1,
    D2,
}

/// The device model: attach to an [`I2cBus`] and it behaves like the real
/// part.
#[derive(Debug, Clone)]
pub struct Ms5837 {
    /// Water conditions the sensor is immersed in.
    pub water: WaterSample,
    prom: [u16; 7],
    pending: Pending,
    adc_result: u32,
    read_ptr: Option<u8>,
}

impl Ms5837 {
    /// New sensor in the given water with default calibration.
    pub fn new(water: WaterSample) -> Self {
        Ms5837 {
            water,
            prom: DEFAULT_PROM,
            pending: Pending::None,
            adc_result: 0,
            read_ptr: None,
        }
    }

    /// Synthesise the raw D2 (temperature ADC) value from the true
    /// temperature by inverting the compensation equations.
    fn d2_from_temperature(&self) -> u32 {
        let c5 = self.prom[5] as i64;
        let c6 = self.prom[6] as i64;
        let temp = (self.water.temperature_c * 100.0).round() as i64; // 0.01 C
        let dt = (temp - 2000) * (1 << 23) / c6;
        (dt + c5 * 256).clamp(0, (1 << 24) - 1) as u32
    }

    /// Synthesise D1 (pressure ADC) from the true pressure.
    fn d1_from_pressure(&self) -> u32 {
        let c1 = self.prom[1] as i64;
        let c2 = self.prom[2] as i64;
        let c3 = self.prom[3] as i64;
        let c4 = self.prom[4] as i64;
        let c6 = self.prom[6] as i64;
        let temp = (self.water.temperature_c * 100.0).round() as i64;
        let dt = (temp - 2000) * (1 << 23) / c6;
        let off = c2 * (1 << 16) + (c4 * dt) / (1 << 7);
        let sens = c1 * (1 << 15) + (c3 * dt) / (1 << 8);
        let p = (self.water.pressure_mbar * 10.0).round() as i64; // 0.1 mbar
        // P = (D1·SENS/2²¹ − OFF)/2¹³  ⇒  D1 = (P·2¹³ + OFF)·2²¹/SENS.
        let d1 = (p * (1 << 13) + off) * (1 << 21) / sens;
        d1.clamp(0, (1 << 24) - 1) as u32
    }
}

impl I2cDevice for Ms5837 {
    fn address(&self) -> u8 {
        MS5837_ADDR
    }

    fn write(&mut self, bytes: &[u8]) -> Result<(), I2cError> {
        let cmd = *bytes.first().ok_or(I2cError::InvalidCommand(0))?;
        match cmd {
            0x1E => {
                self.pending = Pending::None;
                self.adc_result = 0;
                self.read_ptr = None;
                Ok(())
            }
            0x40..=0x48 => {
                self.pending = Pending::D1;
                self.adc_result = self.d1_from_pressure();
                self.read_ptr = None;
                Ok(())
            }
            0x50..=0x58 => {
                self.pending = Pending::D2;
                self.adc_result = self.d2_from_temperature();
                self.read_ptr = None;
                Ok(())
            }
            0x00 => {
                self.read_ptr = Some(0x00);
                Ok(())
            }
            0xA0..=0xAC if cmd % 2 == 0 => {
                self.read_ptr = Some(cmd);
                Ok(())
            }
            other => Err(I2cError::InvalidCommand(other)),
        }
    }

    fn read(&mut self, len: usize) -> Result<Vec<u8>, I2cError> {
        match self.read_ptr {
            Some(0x00) => {
                if self.pending == Pending::None {
                    return Err(I2cError::InvalidCommand(0x00));
                }
                let v = self.adc_result;
                self.pending = Pending::None;
                Ok(vec![
                    ((v >> 16) & 0xFF) as u8,
                    ((v >> 8) & 0xFF) as u8,
                    (v & 0xFF) as u8,
                ]
                .into_iter()
                .take(len)
                .collect())
            }
            Some(cmd @ 0xA0..=0xAC) => {
                let idx = ((cmd - 0xA0) / 2) as usize;
                let word = self.prom[idx];
                Ok(vec![(word >> 8) as u8, (word & 0xFF) as u8]
                    .into_iter()
                    .take(len)
                    .collect())
            }
            _ => Err(I2cError::InvalidCommand(0xFF)),
        }
    }
}

/// A temperature + pressure reading after compensation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ms5837Reading {
    /// Temperature, degrees Celsius.
    pub temperature_c: f64,
    /// Absolute pressure, millibar.
    pub pressure_mbar: f64,
}

/// The firmware-side driver: runs the command sequence over the bus and
/// applies the datasheet compensation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ms5837Driver;

impl Ms5837Driver {
    /// Read PROM calibration words C0..C6.
    pub fn read_prom(bus: &mut I2cBus) -> Result<[u16; 7], SensorError> {
        let mut prom = [0u16; 7];
        for (k, word) in prom.iter_mut().enumerate() {
            bus.write(MS5837_ADDR, &[0xA0 + 2 * k as u8])?;
            let bytes = bus.read(MS5837_ADDR, 2)?;
            if bytes.len() != 2 {
                return Err(SensorError::ConversionNotReady);
            }
            *word = u16::from_be_bytes([bytes[0], bytes[1]]);
        }
        Ok(prom)
    }

    fn read_adc(bus: &mut I2cBus) -> Result<u32, SensorError> {
        bus.write(MS5837_ADDR, &[0x00])?;
        let b = bus.read(MS5837_ADDR, 3)?;
        if b.len() != 3 {
            return Err(SensorError::ConversionNotReady);
        }
        Ok(((b[0] as u32) << 16) | ((b[1] as u32) << 8) | b[2] as u32)
    }

    /// Full measurement: reset, PROM, D1 + D2 conversions, compensation.
    pub fn measure(bus: &mut I2cBus) -> Result<Ms5837Reading, SensorError> {
        bus.write(MS5837_ADDR, &[0x1E])?;
        let prom = Self::read_prom(bus)?;
        bus.write(MS5837_ADDR, &[0x48])?; // D1, max OSR
        let d1 = Self::read_adc(bus)? as i64;
        bus.write(MS5837_ADDR, &[0x58])?; // D2, max OSR
        let d2 = Self::read_adc(bus)? as i64;
        let c1 = prom[1] as i64;
        let c2 = prom[2] as i64;
        let c3 = prom[3] as i64;
        let c4 = prom[4] as i64;
        let c5 = prom[5] as i64;
        let c6 = prom[6] as i64;
        let dt = d2 - c5 * 256;
        let temp = 2000 + dt * c6 / (1 << 23);
        let off = c2 * (1 << 16) + (c4 * dt) / (1 << 7);
        let sens = c1 * (1 << 15) + (c3 * dt) / (1 << 8);
        let p = (d1 * sens / (1 << 21) - off) / (1 << 13);
        Ok(Ms5837Reading {
            temperature_c: temp as f64 / 100.0,
            pressure_mbar: p as f64 / 10.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus_with(water: WaterSample) -> I2cBus {
        let mut bus = I2cBus::new();
        bus.attach(Box::new(Ms5837::new(water)));
        bus
    }

    #[test]
    fn bench_conditions_roundtrip() {
        let mut bus = bus_with(WaterSample::bench());
        let r = Ms5837Driver::measure(&mut bus).unwrap();
        assert!((r.temperature_c - 22.0).abs() < 0.05, "T={}", r.temperature_c);
        assert!(
            (r.pressure_mbar - 1013.25).abs() < 2.0,
            "P={}",
            r.pressure_mbar
        );
    }

    #[test]
    fn depth_pressure_roundtrips() {
        for depth in [0.5, 2.0, 10.0, 100.0] {
            let w = WaterSample::at_depth(7.8, 12.0, depth, 1025.0);
            let mut bus = bus_with(w);
            let r = Ms5837Driver::measure(&mut bus).unwrap();
            assert!(
                (r.pressure_mbar - w.pressure_mbar).abs() < 3.0,
                "depth {depth}: {} vs {}",
                r.pressure_mbar,
                w.pressure_mbar
            );
            assert!((r.temperature_c - 12.0).abs() < 0.05);
        }
    }

    #[test]
    fn cold_and_hot_temperatures_roundtrip() {
        for t in [-2.0, 4.0, 30.0, 40.0] {
            let mut w = WaterSample::bench();
            w.temperature_c = t;
            let mut bus = bus_with(w);
            let r = Ms5837Driver::measure(&mut bus).unwrap();
            assert!((r.temperature_c - t).abs() < 0.05, "t={t} got {}", r.temperature_c);
        }
    }

    #[test]
    fn prom_reads_back_calibration() {
        let mut bus = bus_with(WaterSample::bench());
        let prom = Ms5837Driver::read_prom(&mut bus).unwrap();
        assert_eq!(prom, DEFAULT_PROM);
    }

    #[test]
    fn adc_read_without_conversion_fails() {
        let mut dev = Ms5837::new(WaterSample::bench());
        dev.write(&[0x00]).unwrap();
        assert!(dev.read(3).is_err());
    }

    #[test]
    fn invalid_command_rejected() {
        let mut dev = Ms5837::new(WaterSample::bench());
        assert!(dev.write(&[0x77]).is_err());
        assert!(dev.write(&[0xA1]).is_err()); // odd PROM address
        assert!(dev.write(&[]).is_err());
    }

    #[test]
    fn reset_clears_pending_conversion() {
        let mut dev = Ms5837::new(WaterSample::bench());
        dev.write(&[0x48]).unwrap();
        dev.write(&[0x1E]).unwrap();
        dev.write(&[0x00]).unwrap();
        assert!(dev.read(3).is_err());
    }

    #[test]
    fn missing_device_errors() {
        let mut bus = I2cBus::new();
        assert!(matches!(
            Ms5837Driver::measure(&mut bus),
            Err(SensorError::Bus(_))
        ));
    }
}
