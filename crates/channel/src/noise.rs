//! Ambient noise: Wenz-style spectral levels and Gaussian sample
//! generation.
//!
//! In the 10–20 kHz band PAB occupies, open-water ambient noise is
//! dominated by wind/sea-state (thermal noise takes over above ~50 kHz);
//! enclosed test tanks are much quieter and mostly limited by the
//! receiving chain. Both are modelled as Gaussian noise whose standard
//! deviation derives from a spectral level integrated over the receiver
//! bandwidth.

use crate::ChannelError;
use rand::Rng;

/// Ambient-noise environment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseEnvironment {
    /// Quiet indoor test tank; `level_db` is the flat spectral level in
    /// dB re 1 µPa²/Hz.
    Tank { level_db: f64 },
    /// Open water parameterised by wind speed (m/s) and shipping activity
    /// (0..1), using the classic empirical formulas.
    OpenWater { wind_m_s: f64, shipping: f64 },
}

impl NoiseEnvironment {
    /// Quiet laboratory tank (≈ 40 dB re 1 µPa²/Hz: instrument-limited).
    pub fn quiet_tank() -> Self {
        NoiseEnvironment::Tank { level_db: 40.0 }
    }

    /// Noise power spectral density at `freq_hz`, dB re 1 µPa²/Hz.
    ///
    /// Open-water model (f in kHz):
    /// * turbulence: `17 - 30 log f`
    /// * shipping:   `40 + 20(s - 0.5) + 26 log f - 60 log(f + 0.03)`
    /// * wind:       `50 + 7.5 √w + 20 log f - 40 log(f + 0.4)`
    /// * thermal:    `-15 + 20 log f`
    ///
    /// summed in power.
    pub fn spectral_level_db(&self, freq_hz: f64) -> f64 {
        match *self {
            NoiseEnvironment::Tank { level_db } => level_db,
            NoiseEnvironment::OpenWater { wind_m_s, shipping } => {
                let f = (freq_hz / 1000.0).max(1e-3);
                let lf = f.log10();
                let turb = 17.0 - 30.0 * lf;
                let ship = 40.0 + 20.0 * (shipping - 0.5) + 26.0 * lf
                    - 60.0 * (f + 0.03).log10();
                let wind = 50.0 + 7.5 * wind_m_s.max(0.0).sqrt() + 20.0 * lf
                    - 40.0 * (f + 0.4).log10();
                let therm = -15.0 + 20.0 * lf;
                let total_power = 10f64.powf(turb / 10.0)
                    + 10f64.powf(ship / 10.0)
                    + 10f64.powf(wind / 10.0)
                    + 10f64.powf(therm / 10.0);
                10.0 * total_power.log10()
            }
        }
    }

    /// RMS pressure (pascals) of the noise integrated over `bandwidth_hz`
    /// around `freq_hz`.
    pub fn rms_pressure_pa(&self, freq_hz: f64, bandwidth_hz: f64) -> Result<f64, ChannelError> {
        if !(bandwidth_hz > 0.0) {
            return Err(ChannelError::InvalidParameter("bandwidth_hz"));
        }
        let psd_db = self.spectral_level_db(freq_hz);
        // dB re 1 µPa²/Hz -> µPa² / Hz -> Pa².
        let psd_upa2 = 10f64.powf(psd_db / 10.0);
        let power_pa2 = psd_upa2 * bandwidth_hz * 1e-12;
        Ok(power_pa2.sqrt())
    }
}

/// Draw one standard-normal sample (Box–Muller; avoids an extra dependency).
// lint: unitless N(0,1) draw; caller applies the scale
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Add white Gaussian noise with standard deviation `sigma_pa` to a signal in
/// place.
pub fn add_awgn<R: Rng + ?Sized>(signal: &mut [f64], sigma_pa: f64, rng: &mut R) {
    if sigma_pa <= 0.0 {
        return;
    }
    for s in signal.iter_mut() {
        *s += sigma_pa * standard_normal(rng);
    }
}

/// Generate `n` samples of white Gaussian noise with standard deviation
/// `sigma_pa`.
pub fn awgn<R: Rng + ?Sized>(n: usize, sigma_pa: f64, rng: &mut R) -> Vec<f64> {
    (0..n).map(|_| sigma_pa * standard_normal(rng)).collect()
}

/// Sigma needed for a target SNR (dB) given a signal power (linear).
/// The returned sigma is in the signal's own amplitude units.
pub fn sigma_for_snr_db(
    signal_power: f64, // lint: unitless — linear power in the signal's own units; only the SNR ratio matters
    snr_db: f64,
) -> f64 {
    (signal_power / 10f64.powf(snr_db / 10.0)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn tank_level_is_flat() {
        let env = NoiseEnvironment::quiet_tank();
        assert_eq!(env.spectral_level_db(1_000.0), env.spectral_level_db(20_000.0));
    }

    #[test]
    fn wind_raises_open_water_noise() {
        let calm = NoiseEnvironment::OpenWater { wind_m_s: 0.0, shipping: 0.3 };
        let windy = NoiseEnvironment::OpenWater { wind_m_s: 15.0, shipping: 0.3 };
        assert!(windy.spectral_level_db(15_000.0) > calm.spectral_level_db(15_000.0));
    }

    #[test]
    fn shipping_matters_at_low_frequency_not_high() {
        let lo_ship = NoiseEnvironment::OpenWater { wind_m_s: 5.0, shipping: 0.0 };
        let hi_ship = NoiseEnvironment::OpenWater { wind_m_s: 5.0, shipping: 1.0 };
        let delta_100 = hi_ship.spectral_level_db(100.0) - lo_ship.spectral_level_db(100.0);
        let delta_15k = hi_ship.spectral_level_db(15_000.0) - lo_ship.spectral_level_db(15_000.0);
        assert!(delta_100 > 5.0, "delta_100={delta_100}");
        assert!(delta_15k < 1.0, "delta_15k={delta_15k}");
    }

    #[test]
    fn open_water_levels_in_plausible_band() {
        // Sea state with moderate wind at 15 kHz: ~35-55 dB re µPa²/Hz.
        let env = NoiseEnvironment::OpenWater { wind_m_s: 7.0, shipping: 0.5 };
        let l = env.spectral_level_db(15_000.0);
        assert!((30.0..60.0).contains(&l), "l={l}");
    }

    #[test]
    fn rms_pressure_scales_with_bandwidth() {
        let env = NoiseEnvironment::quiet_tank();
        let narrow = env.rms_pressure_pa(15_000.0, 100.0).unwrap();
        let wide = env.rms_pressure_pa(15_000.0, 10_000.0).unwrap();
        assert!((wide / narrow - 10.0).abs() < 1e-9);
        assert!(env.rms_pressure_pa(15_000.0, 0.0).is_err());
    }

    #[test]
    fn awgn_statistics() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let x = awgn(100_000, 2.0, &mut rng);
        let mean = x.iter().sum::<f64>() / x.len() as f64;
        let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / x.len() as f64;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var - 4.0).abs() < 0.15, "var={var}");
    }

    #[test]
    fn add_awgn_zero_sigma_is_noop() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut x = vec![1.0, 2.0];
        add_awgn(&mut x, 0.0, &mut rng);
        assert_eq!(x, vec![1.0, 2.0]);
    }

    #[test]
    fn sigma_for_snr_inverts() {
        let sigma_pa = sigma_for_snr_db(0.5, 10.0);
        // SNR = P_sig / sigma_pa^2 = 0.5 / 0.05 = 10 => 10 dB.
        assert!((0.5 / (sigma_pa * sigma_pa) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn noise_is_deterministic_with_seed() {
        let a = awgn(16, 1.0, &mut ChaCha8Rng::seed_from_u64(9));
        let b = awgn(16, 1.0, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
