//! Tapped-delay-line channels and their application to sampled waveforms.

use crate::ChannelError;
use pab_dsp::resample::add_delayed_scaled;

/// Below this range the 1/d point-source law is no longer valid (the
/// transducer is ~5 cm across); gains are clamped at this distance.
pub const NEAR_FIELD_LIMIT_M: f64 = 0.3;

/// One propagation path: an arrival with a delay and a (signed) amplitude
/// gain relative to the source level at 1 m.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tap {
    /// Propagation delay, seconds.
    pub delay_s: f64,
    /// Amplitude gain (negative for phase-inverting surface bounces).
    // lint: unitless linear amplitude gain, signed for phase inversion
    pub gain: f64,
}

/// A linear time-invariant multipath channel as a list of taps.
#[derive(Debug, Clone, PartialEq)]
pub struct MultipathChannel {
    taps: Vec<Tap>,
}

impl MultipathChannel {
    /// Build from explicit taps; taps are sorted by increasing delay.
    pub fn new(mut taps: Vec<Tap>) -> Result<Self, ChannelError> {
        if taps.is_empty() {
            return Err(ChannelError::InvalidParameter("taps must be non-empty"));
        }
        for t in &taps {
            if !(t.delay_s >= 0.0) || !t.delay_s.is_finite() || !t.gain.is_finite() {
                return Err(ChannelError::InvalidParameter("tap delay/gain"));
            }
        }
        taps.sort_by(|a, b| a.delay_s.total_cmp(&b.delay_s));
        Ok(MultipathChannel { taps })
    }

    /// A single direct path: free-field spherical spreading over
    /// `distance_m` at sound speed `c`.
    pub fn free_field(distance_m: f64, sound_speed_m_s: f64) -> Result<Self, ChannelError> {
        if !(distance_m > 0.0) {
            return Err(ChannelError::InvalidParameter("distance_m"));
        }
        if !(sound_speed_m_s > 0.0) {
            return Err(ChannelError::InvalidParameter("sound_speed_m_s"));
        }
        MultipathChannel::new(vec![Tap {
            delay_s: distance_m / sound_speed_m_s,
            gain: 1.0 / distance_m.max(NEAR_FIELD_LIMIT_M),
        }])
    }

    /// The taps, sorted by delay.
    pub fn taps(&self) -> &[Tap] {
        &self.taps
    }

    /// First-arrival (direct-path) tap.
    pub fn direct(&self) -> Tap {
        self.taps[0]
    }

    /// Coherent sum of tap gains — the steady-state channel gain for a
    /// narrowband carrier at `freq_hz` (complex phasor magnitude).
    // lint: unitless linear amplitude gain (phasor magnitude)
    pub fn coherent_gain_at(&self, freq_hz: f64) -> f64 {
        let w = std::f64::consts::TAU * freq_hz;
        let (mut re, mut im) = (0.0, 0.0);
        for t in &self.taps {
            re += t.gain * (w * t.delay_s).cos();
            im -= t.gain * (w * t.delay_s).sin();
        }
        (re * re + im * im).sqrt()
    }

    /// Sum of |gain| — an upper bound on constructive interference.
    // lint: unitless linear amplitude gain bound
    pub fn total_energy_gain(&self) -> f64 {
        self.taps.iter().map(|t| t.gain * t.gain).sum::<f64>().sqrt()
    }

    /// RMS delay spread, seconds — multipath severity metric.
    pub fn rms_delay_spread_s(&self) -> f64 {
        let p_total: f64 = self.taps.iter().map(|t| t.gain * t.gain).sum();
        if p_total == 0.0 {
            return 0.0;
        }
        let mean: f64 = self
            .taps
            .iter()
            .map(|t| t.delay_s * t.gain * t.gain)
            .sum::<f64>()
            / p_total;
        let var: f64 = self
            .taps
            .iter()
            .map(|t| (t.delay_s - mean).powi(2) * t.gain * t.gain)
            .sum::<f64>()
            / p_total;
        var.sqrt()
    }

    /// Length of the buffer [`apply`](Self::apply) produces for an input
    /// of `input_len` samples: the input extended by the maximum tap
    /// delay (plus interpolation slack) so no energy is truncated. Lets
    /// callers pre-size accumulation buffers that must match `apply`'s
    /// framing exactly.
    pub fn output_len(&self, input_len: usize, fs_hz: f64) -> usize {
        let max_delay = self.taps.last().map(|t| t.delay_s).unwrap_or(0.0);
        input_len + (max_delay * fs_hz).ceil() as usize + 2
    }

    /// Apply the channel to a sampled waveform at sample rate `fs_hz`.
    ///
    /// The output buffer is extended by the maximum tap delay so no energy
    /// is truncated; fractional delays use linear interpolation.
    pub fn apply(&self, signal: &[f64], fs_hz: f64) -> Vec<f64> {
        let mut out = vec![0.0; self.output_len(signal.len(), fs_hz)];
        for t in &self.taps {
            add_delayed_scaled(&mut out, signal, t.delay_s * fs_hz, t.gain);
        }
        out
    }

    /// Apply the channel into a caller-owned accumulation buffer (for
    /// superposing several sources at one receiver). Energy falling past
    /// the end of `dst` is dropped.
    pub fn apply_into(&self, dst: &mut [f64], signal: &[f64], fs_hz: f64) {
        for t in &self.taps {
            add_delayed_scaled(dst, signal, t.delay_s * fs_hz, t.gain);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_field_single_tap() {
        let ch = MultipathChannel::free_field(5.0, 1500.0).unwrap();
        assert_eq!(ch.taps().len(), 1);
        let t = ch.direct();
        assert!((t.delay_s - 5.0 / 1500.0).abs() < 1e-12);
        assert!((t.gain - 0.2).abs() < 1e-12);
    }

    #[test]
    fn sub_near_field_distance_clamps_gain() {
        let ch = MultipathChannel::free_field(0.1, 1500.0).unwrap();
        assert!((ch.direct().gain - 1.0 / NEAR_FIELD_LIMIT_M).abs() < 1e-12);
        // At 0.5 m the true 1/d law applies.
        let ch2 = MultipathChannel::free_field(0.5, 1500.0).unwrap();
        assert!((ch2.direct().gain - 2.0).abs() < 1e-12);
    }

    #[test]
    fn taps_sorted_by_delay() {
        let ch = MultipathChannel::new(vec![
            Tap { delay_s: 0.02, gain: 0.1 },
            Tap { delay_s: 0.01, gain: 0.5 },
        ])
        .unwrap();
        assert!(ch.taps()[0].delay_s < ch.taps()[1].delay_s);
        assert_eq!(ch.direct().gain, 0.5);
    }

    #[test]
    fn apply_impulse_reveals_taps() {
        let fs_hz = 1000.0;
        let ch = MultipathChannel::new(vec![
            Tap { delay_s: 0.002, gain: 1.0 },
            Tap { delay_s: 0.005, gain: -0.5 },
        ])
        .unwrap();
        let mut x = vec![0.0; 10];
        x[0] = 1.0;
        let y = ch.apply(&x, fs_hz);
        assert!((y[2] - 1.0).abs() < 1e-12);
        assert!((y[5] + 0.5).abs() < 1e-12);
    }

    #[test]
    fn apply_extends_for_late_taps() {
        let fs_hz = 1000.0;
        let ch = MultipathChannel::new(vec![Tap { delay_s: 0.05, gain: 1.0 }]).unwrap();
        let x = vec![1.0; 10];
        let y = ch.apply(&x, fs_hz);
        assert!(y.len() >= 60);
        assert!((y[55] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coherent_gain_reflects_interference() {
        // Two equal taps half a carrier period apart cancel.
        let f = 1_000.0;
        let half_period = 0.5 / f;
        let ch = MultipathChannel::new(vec![
            Tap { delay_s: 0.0, gain: 1.0 },
            Tap { delay_s: half_period, gain: 1.0 },
        ])
        .unwrap();
        assert!(ch.coherent_gain_at(f) < 1e-9);
        // And a full period apart they add.
        let ch2 = MultipathChannel::new(vec![
            Tap { delay_s: 0.0, gain: 1.0 },
            Tap { delay_s: 1.0 / f, gain: 1.0 },
        ])
        .unwrap();
        assert!((ch2.coherent_gain_at(f) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn delay_spread_zero_for_single_path() {
        let ch = MultipathChannel::free_field(3.0, 1500.0).unwrap();
        assert_eq!(ch.rms_delay_spread_s(), 0.0);
    }

    #[test]
    fn rejects_invalid_taps() {
        assert!(MultipathChannel::new(vec![]).is_err());
        assert!(MultipathChannel::new(vec![Tap {
            delay_s: -1.0,
            gain: 1.0
        }])
        .is_err());
        assert!(MultipathChannel::new(vec![Tap {
            delay_s: 0.0,
            gain: f64::NAN
        }])
        .is_err());
        assert!(MultipathChannel::free_field(-2.0, 1500.0).is_err());
        assert!(MultipathChannel::free_field(2.0, 0.0).is_err());
    }
}
