//! Rectangular-tank multipath via the image-source method (Allen–Berkley
//! style, adapted from room acoustics to water tanks).
//!
//! The water surface is a pressure-release boundary (phase-inverting);
//! walls and bottom reflect with positive coefficients. Magnitudes are
//! effective *specular* coefficients — they fold in the diffuse-scattering
//! loss of a rippled surface and lined tank walls. An elongated tank (the paper's Pool B) produces many
//! near-axial wall images that arrive nearly in phase — the "corridor"
//! focusing the paper observes in Fig. 9.

use crate::propagation::{MultipathChannel, Tap, NEAR_FIELD_LIMIT_M};
use crate::water::WaterProperties;
use crate::ChannelError;

/// A point in pool coordinates: `x ∈ [0, length]`, `y ∈ [0, width]`,
/// `z ∈ [0, depth]` with `z = 0` at the bottom and `z = depth` the surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Position {
    /// Along the long axis, meters.
    pub x_m: f64,
    /// Across the tank, meters.
    pub y_m: f64,
    /// Height above the bottom, meters.
    pub z_m: f64,
}

impl Position {
    /// Convenience constructor.
    pub fn new(x_m: f64, y_m: f64, z_m: f64) -> Self {
        Position { x_m, y_m, z_m }
    }

    /// Euclidean distance to another position.
    pub fn distance_to_m(&self, other: &Position) -> f64 {
        ((self.x_m - other.x_m).powi(2) + (self.y_m - other.y_m).powi(2) + (self.z_m - other.z_m).powi(2))
            .sqrt()
    }
}

/// An enclosed rectangular water tank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pool {
    /// Interior length (x), meters.
    pub length_m: f64,
    /// Interior width (y), meters.
    pub width_m: f64,
    /// Water depth (z), meters.
    pub depth_m: f64,
    /// Amplitude reflection coefficient of the four side walls.
    // lint: unitless amplitude reflection coefficient in [-1, 1]
    pub wall_reflection: f64,
    /// Amplitude reflection coefficient of the bottom.
    // lint: unitless amplitude reflection coefficient in [-1, 1]
    pub bottom_reflection: f64,
    /// Amplitude reflection coefficient of the free surface (negative:
    /// pressure-release phase inversion).
    // lint: unitless amplitude reflection coefficient in [-1, 1]
    pub surface_reflection: f64,
    /// Water column properties.
    pub water: WaterProperties,
}

impl Pool {
    /// The paper's Pool A: "an enclosed water tank of 1.3 m depth and
    /// 3 m × 4 m rectangular cross-section".
    pub fn pool_a() -> Self {
        Pool {
            length_m: 4.0,
            width_m: 3.0,
            depth_m: 1.3,
            wall_reflection: 0.45,
            bottom_reflection: 0.4,
            surface_reflection: -0.5,
            water: WaterProperties::tank(),
        }
    }

    /// The paper's Pool B: "another enclosed water tank of 1 m depth and
    /// 1.2 m × 10 m rectangular cross section" — the corridor.
    ///
    /// Reflection coefficients include diffuse-scattering loss at each
    /// boundary (a rippled free surface and lined tank walls scatter a
    /// large fraction of the energy out of the specular path).
    pub fn pool_b() -> Self {
        Pool {
            length_m: 10.0,
            width_m: 1.2,
            depth_m: 1.0,
            wall_reflection: 0.45,
            bottom_reflection: 0.4,
            surface_reflection: -0.5,
            water: WaterProperties::tank(),
        }
    }

    /// Validate that a position lies inside the water volume.
    pub fn check_position(&self, p: &Position) -> Result<(), ChannelError> {
        let checks = [
            ('x', p.x_m, self.length_m),
            ('y', p.y_m, self.width_m),
            ('z', p.z_m, self.depth_m),
        ];
        for (axis, value, max) in checks {
            if !(0.0..=max).contains(&value) || !value.is_finite() {
                return Err(ChannelError::OutOfBounds { axis, value, max });
            }
        }
        Ok(())
    }

    /// Build the multipath channel from `src` to `rx` with the image-source
    /// method, keeping images with at most `max_reflections` total boundary
    /// bounces. `freq_hz` sets the (tiny) absorption correction.
    ///
    /// `max_reflections = 0` reduces to the free-field direct path.
    pub fn channel(
        &self,
        src: &Position,
        rx: &Position,
        max_reflections: usize,
        freq_hz: f64,
    ) -> Result<MultipathChannel, ChannelError> {
        self.check_position(src)?;
        self.check_position(rx)?;
        if !(freq_hz > 0.0) {
            return Err(ChannelError::InvalidParameter("freq_hz"));
        }
        let c = self.water.sound_speed_m_s();
        let n = max_reflections as i64;
        let mut taps = Vec::new();
        // Image indices: for each axis, image coordinate is
        // (1 - 2p)·s + 2m·L; bounces off the low boundary: |m - p|,
        // off the high boundary: |m|  (Allen & Berkley 1979).
        for mx in -n..=n {
            for px in 0..=1i64 {
                let bounces_x = (mx - px).unsigned_abs() + mx.unsigned_abs();
                if bounces_x as i64 > n {
                    continue;
                }
                let ix = (1 - 2 * px) as f64 * src.x_m + 2.0 * mx as f64 * self.length_m;
                for my in -n..=n {
                    for py in 0..=1i64 {
                        let bounces_y = (my - py).unsigned_abs() + my.unsigned_abs();
                        if (bounces_x + bounces_y) as i64 > n {
                            continue;
                        }
                        let iy =
                            (1 - 2 * py) as f64 * src.y_m + 2.0 * my as f64 * self.width_m;
                        for mz in -n..=n {
                            for pz in 0..=1i64 {
                                let bounce_bottom = (mz - pz).unsigned_abs();
                                let bounce_surface = mz.unsigned_abs();
                                let total =
                                    bounces_x + bounces_y + bounce_bottom + bounce_surface;
                                if total as i64 > n {
                                    continue;
                                }
                                let iz = (1 - 2 * pz) as f64 * src.z_m
                                    + 2.0 * mz as f64 * self.depth_m;
                                let d = ((ix - rx.x_m).powi(2)
                                    + (iy - rx.y_m).powi(2)
                                    + (iz - rx.z_m).powi(2))
                                .sqrt();
                                let refl = self
                                    .wall_reflection
                                    .powi((bounces_x + bounces_y) as i32)
                                    * self.bottom_reflection.powi(bounce_bottom as i32)
                                    * self.surface_reflection.powi(bounce_surface as i32);
                                let gain = refl
                                    * self.water.absorption_amplitude_factor(freq_hz, d)
                                    / d.max(NEAR_FIELD_LIMIT_M);
                                taps.push(Tap {
                                    delay_s: d / c,
                                    gain,
                                });
                            }
                        }
                    }
                }
            }
        }
        MultipathChannel::new(taps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_dimensions_match_paper() {
        let a = Pool::pool_a();
        assert_eq!((a.length_m, a.width_m, a.depth_m), (4.0, 3.0, 1.3));
        let b = Pool::pool_b();
        assert_eq!((b.length_m, b.width_m, b.depth_m), (10.0, 1.2, 1.0));
    }

    #[test]
    fn zero_order_is_direct_path_only() {
        let p = Pool::pool_a();
        let src = Position::new(1.0, 1.5, 0.6);
        let rx = Position::new(3.0, 1.5, 0.6);
        let ch = p.channel(&src, &rx, 0, 15_000.0).unwrap();
        assert_eq!(ch.taps().len(), 1);
        let d = src.distance_to_m(&rx);
        assert!((ch.direct().delay_s - d / p.water.sound_speed_m_s()).abs() < 1e-9);
    }

    #[test]
    fn higher_order_adds_taps() {
        let p = Pool::pool_a();
        let src = Position::new(1.0, 1.5, 0.6);
        let rx = Position::new(3.0, 1.5, 0.6);
        let n0 = p.channel(&src, &rx, 0, 15_000.0).unwrap().taps().len();
        let n1 = p.channel(&src, &rx, 1, 15_000.0).unwrap().taps().len();
        let n3 = p.channel(&src, &rx, 3, 15_000.0).unwrap().taps().len();
        assert_eq!(n0, 1);
        // Order 1: direct + 6 first-order bounces.
        assert_eq!(n1, 7);
        assert!(n3 > n1);
    }

    #[test]
    fn first_bounce_gains_have_expected_signs() {
        let p = Pool::pool_a();
        let src = Position::new(1.0, 1.5, 0.6);
        let rx = Position::new(3.0, 1.5, 0.6);
        let ch = p.channel(&src, &rx, 1, 15_000.0).unwrap();
        // Exactly one tap (surface bounce) should be negative.
        let negatives = ch.taps().iter().filter(|t| t.gain < 0.0).count();
        assert_eq!(negatives, 1);
        // Direct tap is the strongest.
        let max_gain = ch
            .taps()
            .iter()
            .map(|t| t.gain.abs())
            .fold(0.0f64, f64::max);
        assert!((ch.direct().gain - max_gain).abs() < 1e-12);
    }

    #[test]
    fn corridor_focuses_energy_at_range() {
        // At the same 4 m separation, elongated Pool B should deliver more
        // multipath energy than the wide Pool A — the Fig. 9 corridor
        // effect.
        let d = 3.0;
        let a = Pool::pool_a();
        let b = Pool::pool_b();
        let cha = a
            .channel(
                &Position::new(0.5, 1.5, 0.6),
                &Position::new(0.5 + d, 1.5, 0.6),
                6,
                15_000.0,
            )
            .unwrap();
        let chb = b
            .channel(
                &Position::new(1.0, 0.6, 0.5),
                &Position::new(1.0 + d, 0.6, 0.5),
                6,
                15_000.0,
            )
            .unwrap();
        assert!(
            chb.total_energy_gain() > cha.total_energy_gain(),
            "pool B {} <= pool A {}",
            chb.total_energy_gain(),
            cha.total_energy_gain()
        );
    }

    #[test]
    fn out_of_bounds_positions_rejected() {
        let p = Pool::pool_a();
        let inside = Position::new(1.0, 1.0, 0.5);
        let outside = Position::new(5.0, 1.0, 0.5);
        assert!(p.channel(&outside, &inside, 1, 15_000.0).is_err());
        assert!(p.channel(&inside, &outside, 1, 15_000.0).is_err());
        assert!(p
            .channel(&inside, &Position::new(1.0, 1.0, 2.0), 1, 15_000.0)
            .is_err());
        assert!(p.channel(&inside, &inside, 1, 0.0).is_err());
    }

    #[test]
    fn position_distance() {
        let a = Position::new(0.0, 0.0, 0.0);
        let b = Position::new(3.0, 4.0, 0.0);
        assert!((a.distance_to_m(&b) - 5.0).abs() < 1e-12);
    }
}
