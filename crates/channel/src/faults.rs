//! Seeded, schedulable link impairments — the fault-injection substrate.
//!
//! The paper's evaluation lives in quiet tanks; a deployed network sees
//! bubbles and surface agitation (broadband noise bursts), slow path-gain
//! fades as geometry and stratification drift, supercap brown-outs that
//! silence a node for seconds (the Fig. 9 power-up threshold crossed from
//! above), and oscillator drift that walks the carrier off the receiver's
//! tuning. A [`FaultSchedule`] composes any of these onto a link as a
//! pure function of *absolute simulation time*, so the same schedule
//! replays bit-identically regardless of how the caller slices time into
//! slots.
//!
//! Determinism contract: every random draw is derived from
//! `(schedule seed, burst index, absolute sample index)` through a
//! SplitMix64 finaliser — never from call order or shared RNG state — so
//! fault-injected runs stay reproducible under the workspace's seeded-RNG
//! discipline and under parallel sweeps.

use crate::ChannelError;

/// SplitMix64 finaliser: the workspace's standard stateless scrambler
/// (same constants as `pab_experiments::sweep::derive_seed`).
fn mix64(z0: u64) -> u64 {
    let mut z = z0.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A standard normal sample derived purely from `seed` (Box–Muller over
/// two SplitMix64 uniforms). Stateless, so sample `k` of burst `b` is the
/// same value no matter how the enclosing window is sliced.
fn normal_from_seed(seed: u64) -> f64 {
    let u1 = ((mix64(seed) >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
    let u2 = (mix64(seed ^ 0xD1B5_4A32_D192_ED03) >> 11) as f64 / (1u64 << 53) as f64;
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A transient broadband noise burst (bubble cloud, surface agitation,
/// passing vessel): additive white noise of RMS `rms_pa` over a window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BroadbandBurst {
    /// Burst onset, seconds of absolute simulation time.
    pub start_s: f64,
    /// Burst duration, seconds.
    pub duration_s: f64,
    /// RMS pressure of the added noise, pascals.
    pub rms_pa: f64,
}

/// A slow path-gain fade: the link gain ramps from 1 down to
/// `floor_ratio` at the window centre and back, on a raised-cosine
/// profile (smooth, so it models geometry/stratification drift rather
/// than a switching event).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathFade {
    /// Fade onset, seconds of absolute simulation time.
    pub start_s: f64,
    /// Fade duration, seconds.
    pub duration_s: f64,
    /// Gain floor at the fade centre, as a ratio in (0, 1].
    pub floor_ratio: f64,
}

/// A node dropout window: the node's storage browned out (or it sank
/// below the power-up threshold), so it neither decodes nor backscatters
/// for the duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DropoutWindow {
    /// Brown-out onset, seconds of absolute simulation time.
    pub start_s: f64,
    /// Time until the supercap recharges past the power-up threshold,
    /// seconds. Use `f64::INFINITY` for a permanently dead node.
    pub duration_s: f64,
}

/// A carrier/clock drift ramp: the node's (or projector's) oscillator
/// walks linearly away from nominal, saturating at `max_abs_hz`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftRamp {
    /// Drift rate, Hz of carrier offset per second of simulation time.
    pub rate_hz_per_s: f64,
    /// Saturation bound on the accumulated offset, Hz.
    pub max_abs_hz: f64,
}

impl DriftRamp {
    /// Accumulated oscillator offset at absolute time `t_s`, Hz, clamped
    /// to the saturation bound. Standalone so callers outside a
    /// [`FaultSchedule`] (e.g. the mobility model composing drift with
    /// Doppler) share the exact same ramp arithmetic.
    pub fn offset_at_hz(&self, t_s: f64) -> f64 {
        (self.rate_hz_per_s * t_s).clamp(-self.max_abs_hz, self.max_abs_hz)
    }
}

/// A composable, seeded schedule of link impairments. An empty schedule
/// (the [`Default`]) is a perfectly healthy link.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSchedule {
    seed: u64,
    bursts: Vec<BroadbandBurst>,
    fades: Vec<PathFade>,
    dropouts: Vec<DropoutWindow>,
    drift: Option<DriftRamp>,
}

impl FaultSchedule {
    /// A schedule with no impairments, seeded for any bursts added later.
    pub fn new(seed: u64) -> Self {
        FaultSchedule {
            seed,
            ..Default::default()
        }
    }

    /// Add a broadband noise burst.
    pub fn with_burst(mut self, burst: BroadbandBurst) -> Result<Self, ChannelError> {
        if !(burst.duration_s > 0.0) || !burst.start_s.is_finite() || burst.start_s < 0.0 {
            return Err(ChannelError::InvalidParameter("burst window"));
        }
        if !(burst.rms_pa >= 0.0) || !burst.rms_pa.is_finite() {
            return Err(ChannelError::InvalidParameter("burst rms_pa"));
        }
        self.bursts.push(burst);
        Ok(self)
    }

    /// Add a slow path-gain fade.
    pub fn with_fade(mut self, fade: PathFade) -> Result<Self, ChannelError> {
        if !(fade.duration_s > 0.0) || !fade.start_s.is_finite() || fade.start_s < 0.0 {
            return Err(ChannelError::InvalidParameter("fade window"));
        }
        if !(fade.floor_ratio > 0.0) || fade.floor_ratio > 1.0 {
            return Err(ChannelError::InvalidParameter("fade floor_ratio"));
        }
        self.fades.push(fade);
        Ok(self)
    }

    /// Add a node dropout (brown-out) window. An infinite duration models
    /// a permanently dead node.
    pub fn with_dropout(mut self, dropout: DropoutWindow) -> Result<Self, ChannelError> {
        if !(dropout.duration_s > 0.0) || !dropout.start_s.is_finite() || dropout.start_s < 0.0 {
            return Err(ChannelError::InvalidParameter("dropout window"));
        }
        self.dropouts.push(dropout);
        Ok(self)
    }

    /// Set the carrier/clock drift ramp (replaces any previous ramp).
    pub fn with_drift(mut self, drift: DriftRamp) -> Result<Self, ChannelError> {
        if !drift.rate_hz_per_s.is_finite() || !(drift.max_abs_hz >= 0.0) {
            return Err(ChannelError::InvalidParameter("drift ramp"));
        }
        self.drift = Some(drift);
        Ok(self)
    }

    /// Whether the schedule contains no impairments at all.
    pub fn is_quiet(&self) -> bool {
        self.bursts.is_empty()
            && self.fades.is_empty()
            && self.dropouts.is_empty()
            && self.drift.is_none()
    }

    /// Multiplicative path gain at absolute time `t_s`: the product of
    /// every active fade's raised-cosine profile (1.0 when none is
    /// active).
    // lint: unitless product of raised-cosine fade profiles, linear gain
    pub fn gain_at(&self, t_s: f64) -> f64 {
        let mut g = 1.0;
        for fade in &self.fades {
            let u = (t_s - fade.start_s) / fade.duration_s;
            if (0.0..=1.0).contains(&u) {
                // 0 at the edges, 1 at the centre.
                let shape = 0.5 * (1.0 - (std::f64::consts::TAU * u).cos());
                g *= 1.0 - (1.0 - fade.floor_ratio) * shape;
            }
        }
        g
    }

    /// Whether the node is browned out at any point during
    /// `[start_s, end_s)` — a node that loses power mid-exchange sends
    /// nothing usable, so partial overlap silences the whole window.
    pub fn node_down_during(&self, start_s: f64, end_s: f64) -> bool {
        self.dropouts
            .iter()
            .any(|d| start_s < d.start_s + d.duration_s && end_s > d.start_s)
    }

    /// Accumulated carrier/clock offset at absolute time `t_s`, Hz.
    pub fn drift_at_hz(&self, t_s: f64) -> f64 {
        match self.drift {
            Some(d) => d.offset_at_hz(t_s),
            None => 0.0,
        }
    }

    /// Whether any burst window covers part of `[start_s, end_s)`.
    pub fn burst_active_during(&self, start_s: f64, end_s: f64) -> bool {
        self.bursts
            .iter()
            .any(|b| b.rms_pa > 0.0 && start_s < b.start_s + b.duration_s && end_s > b.start_s)
    }

    /// Whether any fade window covers part of `[start_s, end_s)`.
    pub fn fade_active_during(&self, start_s: f64, end_s: f64) -> bool {
        self.fades
            .iter()
            .any(|f| f.floor_ratio < 1.0 && start_s < f.start_s + f.duration_s && end_s > f.start_s)
    }

    /// Whether a non-zero drift offset has accumulated anywhere in
    /// `[start_s, end_s)`. The ramp is monotone in |offset|, so checking
    /// the later edge suffices.
    pub fn drift_active_during(&self, _start_s: f64, end_s: f64) -> bool {
        self.drift_at_hz(end_s).abs() > 0.0
    }

    /// The configured drift ramp, if any.
    pub fn drift(&self) -> Option<DriftRamp> {
        self.drift
    }

    /// Add every scheduled burst's noise into `samples`, a window of the
    /// pressure waveform starting at absolute time `window_start_s` and
    /// sampled at `fs_hz`. Sample `k` of burst `b` always receives the
    /// same draw, so overlapping or re-sliced windows stay bit-identical.
    pub fn add_burst_noise(&self, samples: &mut [f64], window_start_s: f64, fs_hz: f64) {
        if !(fs_hz > 0.0) || samples.is_empty() {
            return;
        }
        let n = samples.len();
        for (bi, burst) in self.bursts.iter().enumerate() {
            if burst.rms_pa == 0.0 {
                continue;
            }
            // Overlap of the burst with this window, in absolute sample
            // indices (the determinism anchor).
            let b0 = (burst.start_s * fs_hz).ceil() as i64;
            let b1 = ((burst.start_s + burst.duration_s) * fs_hz).floor() as i64;
            let w0 = (window_start_s * fs_hz).round() as i64;
            let lo = b0.max(w0);
            let hi = b1.min(w0 + n as i64);
            let burst_seed = mix64(self.seed ^ mix64(bi as u64));
            for k in lo..hi {
                let idx = (k - w0) as usize;
                samples[idx] += burst.rms_pa * normal_from_seed(burst_seed ^ (k as u64));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bursty() -> FaultSchedule {
        FaultSchedule::new(42)
            .with_burst(BroadbandBurst {
                start_s: 0.1,
                duration_s: 0.2,
                rms_pa: 0.5,
            })
            .unwrap()
    }

    #[test]
    fn quiet_schedule_is_identity() {
        let f = FaultSchedule::default();
        assert!(f.is_quiet());
        assert_eq!(f.gain_at(1.0), 1.0);
        assert_eq!(f.drift_at_hz(5.0), 0.0);
        assert!(!f.node_down_during(0.0, 100.0));
        let mut s = vec![1.0, 2.0, 3.0];
        f.add_burst_noise(&mut s, 0.0, 1000.0);
        assert_eq!(s, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(FaultSchedule::new(0)
            .with_burst(BroadbandBurst {
                start_s: -1.0,
                duration_s: 1.0,
                rms_pa: 0.1
            })
            .is_err());
        assert!(FaultSchedule::new(0)
            .with_fade(PathFade {
                start_s: 0.0,
                duration_s: 1.0,
                floor_ratio: 0.0
            })
            .is_err());
        assert!(FaultSchedule::new(0)
            .with_dropout(DropoutWindow {
                start_s: 0.0,
                duration_s: 0.0
            })
            .is_err());
        assert!(FaultSchedule::new(0)
            .with_drift(DriftRamp {
                rate_hz_per_s: f64::NAN,
                max_abs_hz: 10.0
            })
            .is_err());
    }

    #[test]
    fn fade_profile_reaches_floor_at_centre() {
        let f = FaultSchedule::new(1)
            .with_fade(PathFade {
                start_s: 1.0,
                duration_s: 2.0,
                floor_ratio: 0.25,
            })
            .unwrap();
        assert!((f.gain_at(0.5) - 1.0).abs() < 1e-12, "before the fade");
        assert!((f.gain_at(2.0) - 0.25).abs() < 1e-12, "fade centre");
        assert!((f.gain_at(3.5) - 1.0).abs() < 1e-12, "after the fade");
        // Smooth: a quarter of the way in, gain is strictly between.
        let mid = f.gain_at(1.5);
        assert!(mid > 0.25 && mid < 1.0, "gain {mid}");
    }

    #[test]
    fn fades_compose_multiplicatively() {
        let f = FaultSchedule::new(1)
            .with_fade(PathFade {
                start_s: 0.0,
                duration_s: 2.0,
                floor_ratio: 0.5,
            })
            .unwrap()
            .with_fade(PathFade {
                start_s: 0.0,
                duration_s: 2.0,
                floor_ratio: 0.5,
            })
            .unwrap();
        assert!((f.gain_at(1.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn dropout_overlap_detection() {
        let f = FaultSchedule::new(1)
            .with_dropout(DropoutWindow {
                start_s: 10.0,
                duration_s: 5.0,
            })
            .unwrap();
        assert!(!f.node_down_during(0.0, 10.0)); // ends exactly at onset
        assert!(f.node_down_during(9.9, 10.1)); // partial overlap silences
        assert!(f.node_down_during(12.0, 13.0));
        assert!(!f.node_down_during(15.0, 16.0));
        // Infinite dropout = permanently dead.
        let dead = FaultSchedule::new(1)
            .with_dropout(DropoutWindow {
                start_s: 0.0,
                duration_s: f64::INFINITY,
            })
            .unwrap();
        assert!(dead.node_down_during(1e9, 1e9 + 1.0));
    }

    #[test]
    fn drift_ramps_and_saturates() {
        let f = FaultSchedule::new(1)
            .with_drift(DriftRamp {
                rate_hz_per_s: 2.0,
                max_abs_hz: 10.0,
            })
            .unwrap();
        assert!((f.drift_at_hz(1.0) - 2.0).abs() < 1e-12);
        assert!((f.drift_at_hz(100.0) - 10.0).abs() < 1e-12, "saturates");
    }

    #[test]
    fn activity_accessors_report_window_overlap() {
        let f = FaultSchedule::new(7)
            .with_burst(BroadbandBurst {
                start_s: 1.0,
                duration_s: 0.5,
                rms_pa: 0.3,
            })
            .unwrap()
            .with_fade(PathFade {
                start_s: 4.0,
                duration_s: 2.0,
                floor_ratio: 0.5,
            })
            .unwrap()
            .with_drift(DriftRamp {
                rate_hz_per_s: 1.0,
                max_abs_hz: 5.0,
            })
            .unwrap();
        assert!(f.burst_active_during(0.9, 1.1));
        assert!(!f.burst_active_during(2.0, 3.0));
        assert!(f.fade_active_during(5.9, 6.5));
        assert!(!f.fade_active_during(0.0, 4.0), "edge-exclusive");
        assert!(f.drift_active_during(0.0, 0.1));
        assert!(!FaultSchedule::default().drift_active_during(0.0, 100.0));
        assert_eq!(
            f.drift(),
            Some(DriftRamp {
                rate_hz_per_s: 1.0,
                max_abs_hz: 5.0
            })
        );
        // A zero-RMS burst and a unity-floor fade are no-ops and must not
        // report as active windows.
        let noop = FaultSchedule::new(0)
            .with_burst(BroadbandBurst {
                start_s: 0.0,
                duration_s: 1.0,
                rms_pa: 0.0,
            })
            .unwrap()
            .with_fade(PathFade {
                start_s: 0.0,
                duration_s: 1.0,
                floor_ratio: 1.0,
            })
            .unwrap();
        assert!(!noop.burst_active_during(0.0, 1.0));
        assert!(!noop.fade_active_during(0.0, 1.0));
    }

    #[test]
    fn drift_ramp_offset_matches_schedule() {
        let ramp = DriftRamp {
            rate_hz_per_s: -3.0,
            max_abs_hz: 7.5,
        };
        assert!((ramp.offset_at_hz(1.0) + 3.0).abs() < 1e-12);
        assert!((ramp.offset_at_hz(100.0) + 7.5).abs() < 1e-12, "saturates");
        let f = FaultSchedule::new(0).with_drift(ramp).unwrap();
        assert_eq!(f.drift_at_hz(2.0), ramp.offset_at_hz(2.0));
    }

    #[test]
    fn burst_noise_is_window_slicing_invariant() {
        // One 4000-sample window vs the same span in two halves: the
        // injected noise must be bit-identical (the determinism contract).
        let f = bursty();
        let fs = 10_000.0;
        let mut whole = vec![0.0; 4000];
        f.add_burst_noise(&mut whole, 0.0, fs);
        let mut first = vec![0.0; 2000];
        let mut second = vec![0.0; 2000];
        f.add_burst_noise(&mut first, 0.0, fs);
        f.add_burst_noise(&mut second, 0.2, fs);
        let stitched: Vec<f64> = first.into_iter().chain(second).collect();
        assert_eq!(whole, stitched);
    }

    #[test]
    fn burst_noise_has_roughly_the_commanded_rms() {
        let f = bursty();
        let fs = 48_000.0;
        let mut s = vec![0.0; (0.4 * fs) as usize];
        f.add_burst_noise(&mut s, 0.0, fs);
        let active: Vec<f64> = s
            .iter()
            .copied()
            .filter(|&x| x != 0.0)
            .collect();
        assert!(active.len() > 9000, "burst spans 0.2 s at 48 kHz");
        let rms = (active.iter().map(|x| x * x).sum::<f64>() / active.len() as f64).sqrt();
        assert!((rms - 0.5).abs() < 0.05, "rms {rms}");
    }

    #[test]
    fn different_seeds_give_different_noise() {
        let fs = 10_000.0;
        let mk = |seed| {
            FaultSchedule::new(seed)
                .with_burst(BroadbandBurst {
                    start_s: 0.0,
                    duration_s: 0.1,
                    rms_pa: 1.0,
                })
                .unwrap()
        };
        let mut a = vec![0.0; 1000];
        let mut b = vec![0.0; 1000];
        mk(1).add_burst_noise(&mut a, 0.0, fs);
        mk(2).add_burst_noise(&mut b, 0.0, fs);
        assert_ne!(a, b);
    }
}
