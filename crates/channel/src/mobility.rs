//! Mobility: time-varying propagation for a moving node (§8 names
//! mobility as one of the open challenges of real deployments).
//!
//! A node receding at velocity `v` sees its propagation delay grow as
//! `τ(t) = (d₀ + v·t)/c`: the received waveform is the transmitted one
//! resampled at a rate `1 − v/c` (Doppler) and attenuated by the growing
//! spreading loss. [`MovingPath`] applies exactly that, sample by sample,
//! with linear interpolation.

use crate::faults::DriftRamp;
use crate::ChannelError;

/// A single direct path to/from a node moving radially at constant speed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MovingPath {
    /// Range at t = 0, meters.
    pub initial_distance_m: f64,
    /// Radial velocity, m/s (positive = receding).
    pub velocity_m_s: f64,
    /// Sound speed, m/s.
    pub sound_speed_m_s: f64,
}

impl MovingPath {
    /// Construct with validation.
    pub fn new(
        initial_distance_m: f64,
        velocity_m_s: f64,
        sound_speed_m_s: f64,
    ) -> Result<Self, ChannelError> {
        if !(initial_distance_m > 0.0) || !initial_distance_m.is_finite() {
            return Err(ChannelError::InvalidParameter("initial_distance_m"));
        }
        if !velocity_m_s.is_finite() || velocity_m_s.abs() >= sound_speed_m_s {
            return Err(ChannelError::InvalidParameter("velocity_m_s"));
        }
        if !(sound_speed_m_s > 0.0) {
            return Err(ChannelError::InvalidParameter("sound_speed_m_s"));
        }
        Ok(MovingPath {
            initial_distance_m,
            velocity_m_s,
            sound_speed_m_s,
        })
    }

    /// Range at time `t_s`, meters (floored at a near-field limit).
    pub fn distance_at_m(&self, t_s: f64) -> f64 {
        (self.initial_distance_m + self.velocity_m_s * t_s)
            .max(crate::propagation::NEAR_FIELD_LIMIT_M)
    }

    /// The Doppler factor `1 − v/c` (received-rate compression ratio).
    // lint: unitless rate-compression ratio 1 - v/c
    pub fn doppler_factor(&self) -> f64 {
        1.0 - self.velocity_m_s / self.sound_speed_m_s
    }

    /// Carrier frequency observed at the receiver for a transmitted
    /// `freq_hz`.
    pub fn observed_frequency_hz(&self, freq_hz: f64) -> f64 {
        freq_hz * self.doppler_factor()
    }

    /// Carrier frequency observed at the receiver when the transmitter's
    /// oscillator also drifts: the oscillator emits `freq_hz` plus the
    /// ramp's accumulated offset at emission time `t_s`, and *that* tone
    /// rides the moving path — so drift and Doppler compose
    /// multiplicatively, `(f₀ + Δf(t)) · (1 − v/c)`, not additively.
    pub fn observed_frequency_with_drift_hz(
        &self,
        freq_hz: f64,
        drift: &DriftRamp,
        t_s: f64,
    ) -> f64 {
        (freq_hz + drift.offset_at_hz(t_s)) * self.doppler_factor()
    }

    /// Total carrier frequency offset (CFO) seen by a receiver tuned to
    /// `freq_hz`, Hz — the composed drift-plus-Doppler error the carrier
    /// recovery loop must absorb.
    pub fn cfo_with_drift_hz(&self, freq_hz: f64, drift: &DriftRamp, t_s: f64) -> f64 {
        self.observed_frequency_with_drift_hz(freq_hz, drift, t_s) - freq_hz
    }

    /// Propagate a sampled waveform along the moving path: per-sample
    /// time-varying delay (Doppler) and spreading loss.
    pub fn apply(&self, signal: &[f64], fs_hz: f64) -> Vec<f64> {
        let c = self.sound_speed_m_s;
        let n_out = signal.len()
            + (self.distance_at_m(signal.len() as f64 / fs_hz) / c * fs_hz).ceil() as usize
            + 2;
        let mut out = vec![0.0; n_out];
        for (i, o) in out.iter_mut().enumerate() {
            let t_rx = i as f64 / fs_hz;
            // Solve t_tx from t_rx = t_tx + (d0 + v·t_tx)/c  (emission-time
            // form; exact for constant radial velocity).
            let t_tx = (t_rx - self.initial_distance_m / c)
                / (1.0 + self.velocity_m_s / c);
            if t_tx < 0.0 {
                continue;
            }
            let x = t_tx * fs_hz;
            let k = x.floor() as usize;
            let frac = x - x.floor();
            if k + 1 >= signal.len() {
                continue;
            }
            let sample = signal[k] * (1.0 - frac) + signal[k + 1] * frac;
            let d = self.distance_at_m(t_tx);
            *o = sample / d.max(crate::propagation::NEAR_FIELD_LIMIT_M);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pab_dsp::goertzel::tone_amplitude;
    use pab_dsp::mix::tone;

    #[test]
    fn stationary_path_matches_free_field() {
        let fs_hz = 48_000.0;
        let p = MovingPath::new(3.0, 0.0, 1_500.0).unwrap();
        let x = tone(1_000.0, fs_hz, 0.0, 9_600);
        let y = p.apply(&x, fs_hz);
        // Amplitude 1/3, frequency unchanged.
        let a = tone_amplitude(&y[2_000..8_000], 1_000.0, fs_hz);
        assert!((a - 1.0 / 3.0).abs() < 0.01, "a={a}");
        assert!((p.observed_frequency_hz(1_000.0) - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn receding_node_shifts_frequency_down() {
        let fs_hz = 192_000.0;
        let v = 5.0; // m/s, fast swimmer
        let p = MovingPath::new(2.0, v, 1_500.0).unwrap();
        let f0 = 15_000.0;
        let x = tone(f0, fs_hz, 0.0, 192_000);
        let y = p.apply(&x, fs_hz);
        let f_obs = p.observed_frequency_hz(f0);
        assert!(f_obs < f0);
        // Energy sits at the Doppler-shifted frequency, not the original.
        let seg = &y[20_000..170_000];
        let at_shifted = tone_amplitude(seg, f_obs, fs_hz);
        let at_original = tone_amplitude(seg, f0, fs_hz);
        assert!(
            at_shifted > 3.0 * at_original,
            "shifted {at_shifted} vs original {at_original}"
        );
    }

    #[test]
    fn approaching_node_shifts_frequency_up_and_gets_louder() {
        let fs_hz = 192_000.0;
        let p = MovingPath::new(5.0, -2.0, 1_500.0).unwrap();
        assert!(p.observed_frequency_hz(15_000.0) > 15_000.0);
        let x = tone(15_000.0, fs_hz, 0.0, 192_000);
        let y = p.apply(&x, fs_hz);
        // Early (far) quieter than late (near).
        let early = tone_amplitude(&y[10_000..40_000], p.observed_frequency_hz(15_000.0), fs_hz);
        let late = tone_amplitude(&y[150_000..180_000], p.observed_frequency_hz(15_000.0), fs_hz);
        assert!(late > early, "late {late} vs early {early}");
    }

    #[test]
    fn distance_floors_at_near_field() {
        let p = MovingPath::new(1.0, -10.0, 1_500.0).unwrap();
        // After 1 s the node would be 9 m "past" the receiver; the model
        // clamps instead of inverting.
        assert!(p.distance_at_m(10.0) >= crate::propagation::NEAR_FIELD_LIMIT_M);
    }

    #[test]
    fn drift_and_doppler_compose_multiplicatively() {
        // Regression pin: a 15 kHz carrier from an oscillator that has
        // drifted +5 Hz (0.5 Hz/s for 10 s), on a node receding at 2 m/s
        // in 1500 m/s water. The drifted tone (15005 Hz) is what rides
        // the Doppler compression:
        //   CFO = (15000 + 5)·(1 − 2/1500) − 15000 = −15.00666... Hz
        let p = MovingPath::new(5.0, 2.0, 1_500.0).unwrap();
        let drift = DriftRamp {
            rate_hz_per_s: 0.5,
            max_abs_hz: 20.0,
        };
        let cfo = p.cfo_with_drift_hz(15_000.0, &drift, 10.0);
        assert!((cfo - (-15.006666666666666)).abs() < 1e-9, "cfo {cfo}");
        // The additive shortcut (f0·factor + Δf) is wrong by Δf·v/c —
        // small, but the whole point of composing properly.
        let additive = p.observed_frequency_hz(15_000.0) + drift.offset_at_hz(10.0);
        let composed = p.observed_frequency_with_drift_hz(15_000.0, &drift, 10.0);
        assert!((additive - composed - 5.0 * 2.0 / 1_500.0).abs() < 1e-9);
        // Saturation carries through: far past the ramp bound the offset
        // pins at max_abs_hz.
        let cfo_late = p.cfo_with_drift_hz(15_000.0, &drift, 1e4);
        assert!((cfo_late - ((15_000.0 + 20.0) * p.doppler_factor() - 15_000.0)).abs() < 1e-9);
        // Zero drift degenerates to the plain Doppler CFO.
        let none = DriftRamp {
            rate_hz_per_s: 0.0,
            max_abs_hz: 0.0,
        };
        let plain = p.observed_frequency_hz(15_000.0) - 15_000.0;
        assert!((p.cfo_with_drift_hz(15_000.0, &none, 10.0) - plain).abs() < 1e-12);
    }

    #[test]
    fn rejects_unphysical_parameters() {
        assert!(MovingPath::new(0.0, 1.0, 1_500.0).is_err());
        assert!(MovingPath::new(1.0, 2_000.0, 1_500.0).is_err());
        assert!(MovingPath::new(1.0, 0.0, 0.0).is_err());
        assert!(MovingPath::new(1.0, f64::NAN, 1_500.0).is_err());
    }
}
