//! Geometric spreading laws.
//!
//! Free-field point sources spread spherically (20 log d); shallow
//! waveguides spread cylindrically (10 log d) once range exceeds the water
//! depth; practical models interpolate with a spreading exponent `k`
//! (transmission loss `= 10 k log10 d`). Pool B's corridor behaviour in
//! Fig. 9 is an extreme case that the image method in [`crate::pool`]
//! captures explicitly; these laws cover open-water scenarios.

use crate::ChannelError;

/// Spreading law selector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Spreading {
    /// Spherical: amplitude ∝ 1/d (k = 2 in TL terms).
    Spherical,
    /// Cylindrical: amplitude ∝ 1/√d (k = 1).
    Cylindrical,
    /// Practical spreading with exponent `k` (TL = 10·k·log10 d);
    /// k = 1.5 is the usual compromise for shallow water.
    Practical(f64),
}

impl Spreading {
    /// The spreading exponent `k` of this law.
    // lint: unitless spreading-law exponent k
    pub fn exponent(self) -> f64 {
        match self {
            Spreading::Spherical => 2.0,
            Spreading::Cylindrical => 1.0,
            Spreading::Practical(k) => k,
        }
    }

    /// Amplitude factor relative to 1 m, at `distance_m`.
    ///
    /// Distances below 1 m are clamped to 1 m (source levels are referenced
    /// to 1 m; nearer fields are not modelled).
    pub fn amplitude_factor(self, distance_m: f64) -> Result<f64, ChannelError> {
        if !(distance_m > 0.0) || !distance_m.is_finite() {
            return Err(ChannelError::InvalidParameter("distance_m"));
        }
        let d = distance_m.max(1.0);
        Ok(d.powf(-self.exponent() / 2.0))
    }

    /// Transmission loss in dB at `distance_m` relative to 1 m.
    pub fn transmission_loss_db(self, distance_m: f64) -> Result<f64, ChannelError> {
        if !(distance_m > 0.0) || !distance_m.is_finite() {
            return Err(ChannelError::InvalidParameter("distance_m"));
        }
        let d = distance_m.max(1.0);
        Ok(10.0 * self.exponent() * d.log10())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spherical_is_inverse_distance() {
        let s = Spreading::Spherical;
        assert!((s.amplitude_factor(10.0).unwrap() - 0.1).abs() < 1e-12);
        assert!((s.transmission_loss_db(10.0).unwrap() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn cylindrical_is_inverse_sqrt_distance() {
        let s = Spreading::Cylindrical;
        assert!((s.amplitude_factor(100.0).unwrap() - 0.1).abs() < 1e-12);
        assert!((s.transmission_loss_db(100.0).unwrap() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn practical_interpolates() {
        let s = Spreading::Practical(1.5);
        let sph = Spreading::Spherical.amplitude_factor(50.0).unwrap();
        let cyl = Spreading::Cylindrical.amplitude_factor(50.0).unwrap();
        let p = s.amplitude_factor(50.0).unwrap();
        assert!(sph < p && p < cyl);
    }

    #[test]
    fn near_field_clamped_to_reference() {
        let s = Spreading::Spherical;
        assert_eq!(s.amplitude_factor(0.3).unwrap(), 1.0);
        assert_eq!(s.transmission_loss_db(0.5).unwrap(), 0.0);
    }

    #[test]
    fn rejects_nonpositive_distance() {
        assert!(Spreading::Spherical.amplitude_factor(0.0).is_err());
        assert!(Spreading::Spherical.amplitude_factor(-3.0).is_err());
        assert!(Spreading::Spherical
            .transmission_loss_db(f64::NAN)
            .is_err());
    }
}
