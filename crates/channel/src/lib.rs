//! # pab-channel — underwater acoustic propagation substrate
//!
//! The paper evaluates PAB in two enclosed water tanks at the MIT Sea Grant
//! (§5.1(d)): Pool A (3 m × 4 m × 1.3 m) and Pool B (1.2 m × 10 m × 1 m, a
//! corridor that focuses the projector's signal and yields longer power-up
//! range, Fig. 9). Since we cannot fill a water tank in CI, this crate
//! simulates the acoustics:
//!
//! * [`water`] — sound speed (Mackenzie), density, Thorp absorption;
//! * [`spreading`] — geometric spreading laws;
//! * [`pool`] — rectangular-tank multipath via the image-source method,
//!   which naturally reproduces the corridor-focusing effect;
//! * [`noise`] — ambient-noise level (Wenz-style wind/shipping terms) and
//!   Gaussian noise generation;
//! * [`propagation`] — applying a tapped-delay-line channel to sampled
//!   pressure waveforms;
//! * [`mobility`] — time-varying (Doppler) propagation for moving nodes,
//!   one of the paper's §8 open challenges;
//! * [`faults`] — seeded, schedulable impairments (noise bursts, path
//!   fades, node dropouts, carrier drift) composable onto any link.
//!
//! All randomness flows through caller-provided [`rand::Rng`]s so that
//! simulations are deterministic and reproducible.
//!
//! ```
//! use pab_channel::{Pool, Position};
//!
//! // The paper's Pool A, projector to node over 2 m, 3rd-order images.
//! let pool = Pool::pool_a();
//! let ch = pool
//!     .channel(&Position::new(0.5, 1.5, 0.6), &Position::new(2.5, 1.5, 0.6), 3, 15_000.0)
//!     .unwrap();
//! assert!(ch.taps().len() > 1); // direct path + reflections
//! let delayed = ch.apply(&[1.0, 0.0, 0.0], 192_000.0);
//! assert!(delayed.len() > 3); // extended by the multipath tail
//! ```
// `!(x > 0.0)` is used deliberately throughout: unlike `x <= 0.0` it is
// also true for NaN, so one guard rejects non-positive *and* non-numeric
// parameters.
#![allow(clippy::neg_cmp_op_on_partial_ord)]


pub mod faults;
pub mod mobility;
pub mod noise;
pub mod pool;
pub mod propagation;
pub mod spreading;
pub mod water;

pub use faults::{BroadbandBurst, DriftRamp, DropoutWindow, FaultSchedule, PathFade};
pub use pool::{Pool, Position};
pub use propagation::{MultipathChannel, Tap};
pub use water::WaterProperties;

/// Errors from channel construction.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelError {
    /// A physical parameter was non-positive or non-finite.
    InvalidParameter(&'static str),
    /// A position lies outside the pool volume.
    OutOfBounds { axis: char, value: f64, max: f64 },
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            ChannelError::OutOfBounds { axis, value, max } => {
                write!(f, "{axis} = {value} outside pool [0, {max}]")
            }
        }
    }
}

impl std::error::Error for ChannelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = ChannelError::OutOfBounds {
            axis: 'x',
            value: 5.0,
            max: 3.0,
        };
        assert!(e.to_string().contains('x'));
        assert!(ChannelError::InvalidParameter("fs_hz")
            .to_string()
            .contains("fs_hz"));
    }
}
