//! Physical properties of the water column: sound speed, density,
//! absorption.

/// Bulk water properties used by the propagation models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaterProperties {
    /// Temperature, degrees Celsius.
    pub temperature_c: f64,
    /// Salinity, parts per thousand (0 for the paper's fresh-water tanks,
    /// ~35 for sea water).
    pub salinity_ppt: f64,
    /// Depth of interest, meters.
    pub depth_m: f64,
}

impl WaterProperties {
    /// Fresh tap water at room temperature — the MIT Sea Grant tanks.
    pub fn tank() -> Self {
        WaterProperties {
            temperature_c: 20.0,
            salinity_ppt: 0.0,
            depth_m: 0.75,
        }
    }

    /// Standard sea water near the surface.
    pub fn seawater() -> Self {
        WaterProperties {
            temperature_c: 13.0,
            salinity_ppt: 35.0,
            depth_m: 10.0,
        }
    }

    /// Speed of sound via the Mackenzie (1981) nine-term equation, m/s.
    /// Valid for 2–30 °C, 25–40 ppt, 0–8000 m; degrades gracefully outside.
    pub fn sound_speed_m_s(&self) -> f64 {
        let t = self.temperature_c;
        let s = self.salinity_ppt;
        let d = self.depth_m;
        1448.96 + 4.591 * t - 5.304e-2 * t * t + 2.374e-4 * t * t * t
            + 1.340 * (s - 35.0)
            + 1.630e-2 * d
            + 1.675e-7 * d * d
            - 1.025e-2 * t * (s - 35.0)
            - 7.139e-13 * t * d * d * d
    }

    /// Density of water, kg/m³ (simple linear salinity/temperature model).
    pub fn density_kg_m3(&self) -> f64 {
        998.2 - 0.2 * (self.temperature_c - 20.0) + 0.76 * self.salinity_ppt
    }

    /// Characteristic acoustic impedance `ρc`, rayl (Pa·s/m).
    pub fn acoustic_impedance_rayl(&self) -> f64 {
        self.density_kg_m3() * self.sound_speed_m_s()
    }

    /// Thorp absorption coefficient at `freq_hz`, in dB/km.
    ///
    /// The classic formula (f in kHz):
    /// `α = 0.11 f²/(1+f²) + 44 f²/(4100+f²) + 2.75e-4 f² + 0.003`.
    /// At PAB's 12–18 kHz this is ~1–3 dB/km — negligible over 10 m, but
    /// included so ocean-scale scenarios stay honest.
    pub fn thorp_absorption_db_per_km(&self, freq_hz: f64) -> f64 {
        let f = (freq_hz / 1000.0).max(0.0);
        let f2 = f * f;
        0.11 * f2 / (1.0 + f2) + 44.0 * f2 / (4100.0 + f2) + 2.75e-4 * f2 + 0.003
    }

    /// Linear amplitude attenuation factor over `distance_m` at `freq_hz`
    /// due to absorption only (spreading handled separately).
    // lint: unitless linear amplitude attenuation factor in (0, 1]
    pub fn absorption_amplitude_factor(&self, freq_hz: f64, distance_m: f64) -> f64 {
        let db = self.thorp_absorption_db_per_km(freq_hz) * distance_m / 1000.0;
        10f64.powf(-db / 20.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sound_speed_in_tank_near_1482() {
        let c = WaterProperties::tank().sound_speed_m_s();
        // Fresh water at 20 C: Mackenzie extrapolates to ~1447 + ... the
        // well-known value is ~1482 m/s; the salinity extrapolation pulls
        // it down somewhat. Accept the physically sane band.
        assert!((1400.0..1500.0).contains(&c), "c={c}");
    }

    #[test]
    fn sound_speed_in_seawater_near_1500() {
        let c = WaterProperties::seawater().sound_speed_m_s();
        assert!((1480.0..1520.0).contains(&c), "c={c}");
    }

    #[test]
    fn warmer_water_is_faster() {
        let cold = WaterProperties {
            temperature_c: 5.0,
            ..WaterProperties::seawater()
        };
        let warm = WaterProperties {
            temperature_c: 25.0,
            ..WaterProperties::seawater()
        };
        assert!(warm.sound_speed_m_s() > cold.sound_speed_m_s());
    }

    #[test]
    fn thorp_absorption_grows_with_frequency() {
        let w = WaterProperties::seawater();
        let a1 = w.thorp_absorption_db_per_km(1_000.0);
        let a15 = w.thorp_absorption_db_per_km(15_000.0);
        let a100 = w.thorp_absorption_db_per_km(100_000.0);
        assert!(a1 < a15 && a15 < a100);
        // Around 15 kHz Thorp gives a few dB/km.
        assert!((1.0..5.0).contains(&a15), "a15={a15}");
    }

    #[test]
    fn absorption_negligible_over_tank_scales() {
        let w = WaterProperties::tank();
        let f = w.absorption_amplitude_factor(15_000.0, 10.0);
        assert!(f > 0.995, "f={f}");
        assert!(f <= 1.0);
    }

    #[test]
    fn impedance_near_1_5_mrayl() {
        let z = WaterProperties::tank().acoustic_impedance_rayl();
        assert!((1.4e6..1.6e6).contains(&z), "z={z}");
    }
}
