//! Property-based tests for the acoustic channel: energy accounting,
//! geometry invariants, and reciprocity.

use pab_channel::noise::NoiseEnvironment;
use pab_channel::spreading::Spreading;
use pab_channel::{MultipathChannel, Pool, Position, Tap, WaterProperties};
use proptest::prelude::*;

fn arb_position_in(pool: &Pool) -> impl Strategy<Value = Position> {
    let l = pool.length_m;
    let w = pool.width_m;
    let d = pool.depth_m;
    (0.05..l - 0.05, 0.05..w - 0.05, 0.05..d - 0.05)
        .prop_map(|(x, y, z)| Position::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Channel reciprocity: swapping source and receiver gives the same
    /// tap set (image-method geometry is symmetric).
    #[test]
    fn image_channel_is_reciprocal(
        a in arb_position_in(&Pool::pool_a()),
        b in arb_position_in(&Pool::pool_a()),
        order in 0usize..4,
    ) {
        let pool = Pool::pool_a();
        let fwd = pool.channel(&a, &b, order, 15_000.0).unwrap();
        let rev = pool.channel(&b, &a, order, 15_000.0).unwrap();
        prop_assert_eq!(fwd.taps().len(), rev.taps().len());
        let sum = |ch: &MultipathChannel| -> (f64, f64) {
            (
                ch.taps().iter().map(|t| t.delay_s).sum(),
                ch.taps().iter().map(|t| t.gain).sum(),
            )
        };
        let (df, gf) = sum(&fwd);
        let (dr, gr) = sum(&rev);
        prop_assert!((df - dr).abs() < 1e-9);
        prop_assert!((gf - gr).abs() < 1e-9);
    }

    /// The direct tap always arrives first and is the strongest in
    /// magnitude (reflections lose energy at every bounce and travel
    /// farther).
    #[test]
    fn direct_path_dominates(
        a in arb_position_in(&Pool::pool_b()),
        b in arb_position_in(&Pool::pool_b()),
        order in 1usize..5,
    ) {
        let pool = Pool::pool_b();
        let ch = pool.channel(&a, &b, order, 15_000.0).unwrap();
        let direct = ch.direct();
        let expected_delay = a.distance_to_m(&b) / pool.water.sound_speed_m_s();
        prop_assert!((direct.delay_s - expected_delay).abs() < 1e-9);
        let max_abs = ch.taps().iter().map(|t| t.gain.abs()).fold(0.0, f64::max);
        prop_assert!(direct.gain.abs() >= max_abs - 1e-12);
    }

    /// Applying a channel preserves superposition (linearity).
    #[test]
    fn channel_apply_is_linear(
        g1 in -1.0f64..1.0,
        g2 in -1.0f64..1.0,
        d in 0.0f64..0.01,
    ) {
        let ch = MultipathChannel::new(vec![
            Tap { delay_s: 0.0, gain: g1.max(0.01) },
            Tap { delay_s: d, gain: g2 },
        ]).unwrap();
        let x1: Vec<f64> = (0..256).map(|i| ((i * 37) % 17) as f64 - 8.0).collect();
        let x2: Vec<f64> = (0..256).map(|i| ((i * 11) % 23) as f64 - 11.0).collect();
        let xsum: Vec<f64> = x1.iter().zip(&x2).map(|(a, b)| a + b).collect();
        let y1 = ch.apply(&x1, 48_000.0);
        let y2 = ch.apply(&x2, 48_000.0);
        let ys = ch.apply(&xsum, 48_000.0);
        for i in 0..ys.len() {
            prop_assert!((ys[i] - (y1[i] + y2[i])).abs() < 1e-9);
        }
    }

    /// Spreading losses are monotone in distance for every law.
    #[test]
    fn spreading_monotone(d1 in 1.0f64..1_000.0, factor in 1.01f64..10.0, k in 0.5f64..3.0) {
        for law in [Spreading::Spherical, Spreading::Cylindrical, Spreading::Practical(k)] {
            let near = law.amplitude_factor(d1).unwrap();
            let far = law.amplitude_factor(d1 * factor).unwrap();
            prop_assert!(far < near);
        }
    }

    /// Sound speed responds physically: warmer and deeper are both faster.
    #[test]
    fn sound_speed_monotone(t in 0.0f64..29.0, d in 0.0f64..1_000.0) {
        let base = WaterProperties { temperature_c: t, salinity_ppt: 35.0, depth_m: d };
        let warmer = WaterProperties { temperature_c: t + 1.0, ..base };
        let deeper = WaterProperties { depth_m: d + 100.0, ..base };
        prop_assert!(warmer.sound_speed_m_s() > base.sound_speed_m_s());
        prop_assert!(deeper.sound_speed_m_s() > base.sound_speed_m_s());
    }

    /// Thorp absorption is non-negative and monotone in frequency over
    /// the band we use.
    #[test]
    fn thorp_monotone(f in 1_000.0f64..100_000.0) {
        let w = WaterProperties::seawater();
        let a = w.thorp_absorption_db_per_km(f);
        let b = w.thorp_absorption_db_per_km(f * 1.1);
        prop_assert!(a >= 0.0);
        prop_assert!(b >= a);
        let att = w.absorption_amplitude_factor(f, 100.0);
        prop_assert!((0.0..=1.0).contains(&att));
    }

    /// Ambient noise RMS scales with the square root of bandwidth.
    #[test]
    fn noise_rms_sqrt_bandwidth(bw in 1.0f64..50_000.0, wind in 0.0f64..20.0) {
        let env = NoiseEnvironment::OpenWater { wind_m_s: wind, shipping: 0.5 };
        let a = env.rms_pressure_pa(15_000.0, bw).unwrap();
        let b = env.rms_pressure_pa(15_000.0, 4.0 * bw).unwrap();
        prop_assert!((b / a - 2.0).abs() < 1e-9);
    }
}
