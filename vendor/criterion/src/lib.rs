//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! Implements `Criterion`, `BenchmarkGroup`, `Bencher::{iter,
//! iter_batched}`, `Throughput`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros. Instead of criterion's statistical analysis
//! it runs a short warm-up, then a fixed measurement window, and prints
//! mean wall-clock time per iteration (and throughput when configured).
//! Good enough to compare hot-path changes locally without any external
//! dependencies; not a replacement for real criterion statistics.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortises setup cost. The shim runs one setup per
/// iteration regardless; the variant only documents intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every single iteration.
    PerIteration,
}

/// Measures closures handed to `bench_function`.
pub struct Bencher {
    measured: Option<MeasuredTime>,
}

#[derive(Debug, Clone, Copy)]
struct MeasuredTime {
    mean_ns: f64,
    iterations: u64,
}

const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(200);

impl Bencher {
    /// Benchmark `routine` by calling it repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        let start = Instant::now();
        while start.elapsed() < WARMUP {
            std_black_box(routine());
        }
        // Measure.
        let start = Instant::now();
        let mut iterations: u64 = 0;
        while start.elapsed() < MEASURE {
            std_black_box(routine());
            iterations += 1;
        }
        let mean_ns = start.elapsed().as_nanos() as f64 / iterations.max(1) as f64;
        self.measured = Some(MeasuredTime { mean_ns, iterations });
    }

    /// Benchmark `routine` with a fresh `setup` product per call; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let start = Instant::now();
        while start.elapsed() < WARMUP {
            let input = setup();
            std_black_box(routine(input));
        }
        let mut measured = Duration::ZERO;
        let mut iterations: u64 = 0;
        while measured < MEASURE {
            let input = setup();
            let t0 = Instant::now();
            std_black_box(routine(input));
            measured += t0.elapsed();
            iterations += 1;
        }
        let mean_ns = measured.as_nanos() as f64 / iterations.max(1) as f64;
        self.measured = Some(MeasuredTime { mean_ns, iterations });
    }
}

/// The benchmark driver.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

fn report(id: &str, m: MeasuredTime, throughput: Option<Throughput>) {
    let human = if m.mean_ns >= 1e9 {
        format!("{:.3} s", m.mean_ns / 1e9)
    } else if m.mean_ns >= 1e6 {
        format!("{:.3} ms", m.mean_ns / 1e6)
    } else if m.mean_ns >= 1e3 {
        format!("{:.3} µs", m.mean_ns / 1e3)
    } else {
        format!("{:.1} ns", m.mean_ns)
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.2} Melem/s)", n as f64 / m.mean_ns * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.2} MiB/s)", n as f64 / m.mean_ns * 1e9 / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{id:<48} {human:>12}  [{} iters]{rate}", m.iterations);
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { measured: None };
        f(&mut b);
        if let Some(m) = b.measured {
            report(id, m, None);
        }
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A named group sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim's fixed warm-up/measure
    /// windows ignore the requested sample count.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim keeps its fixed
    /// measurement window so local runs stay quick.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim keeps its fixed warm-up
    /// window.
    pub fn warm_up_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Run one named benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { measured: None };
        f(&mut b);
        if let Some(m) = b.measured {
            report(&format!("{}/{}", self.name, id), m, self.throughput);
        }
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group, simple-form only
/// (`criterion_group!(name, target, ...)`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
