//! The `Strategy` trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// is simply a deterministic function of the per-case RNG.
pub trait Strategy {
    /// Type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map: f }
    }

    /// Type-erase this strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of its payload.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.sample(rng))
    }
}

/// Uniform over the full domain of an integer type (`any::<uN>()`).
#[derive(Debug, Clone, Copy)]
pub struct FullRange<T> {
    _marker: PhantomData<T>,
}

impl<T> FullRange<T> {
    pub(crate) fn new() -> Self {
        FullRange { _marker: PhantomData }
    }
}

macro_rules! impl_int_strategies {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )+};
}
impl_int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform `bool` (`any::<bool>()`).
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform abstract index (`any::<sample::Index>()`).
#[derive(Debug, Clone, Copy)]
pub struct AnyIndex;

impl Strategy for AnyIndex {
    type Value = crate::sample::Index;
    fn sample(&self, rng: &mut TestRng) -> crate::sample::Index {
        crate::sample::Index(rng.next_u64())
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($S:ident . $idx:tt),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
}
