//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the property-testing surface its tests use: the [`proptest!`] macro with
//! `name in strategy` parameters and an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header, the
//! `prop_assert*` / [`prop_assume!`] macros, range and [`any`] strategies,
//! tuple strategies, [`Just`], [`prop_oneof!`], `.prop_map`,
//! `collection::vec`, and `sample::Index`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test RNG (FNV hash of the test path mixed with the case number),
//! and there is **no shrinking** — a failing case reports its case number
//! and message instead of a minimised input. That trade keeps the shim
//! dependency-free while preserving the bug-finding power of the suites.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! `Arbitrary` trait and the [`any`] entry point.

    use crate::strategy::{AnyBool, AnyIndex, FullRange, Strategy};
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Strategy type returned by [`Arbitrary::arbitrary`].
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy for this type.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `A` (uniform over the whole domain).
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),+ $(,)?) => {$(
            impl Arbitrary for $t {
                type Strategy = FullRange<$t>;
                fn arbitrary() -> Self::Strategy {
                    FullRange::new()
                }
            }
        )+};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> Self::Strategy {
            AnyBool
        }
    }

    impl Arbitrary for crate::sample::Index {
        type Strategy = AnyIndex;
        fn arbitrary() -> Self::Strategy {
            AnyIndex
        }
    }

    /// Strategy for `f64` uniform over [0, 1) (upstream uses a wider
    /// special-value-aware distribution; nothing in the workspace relies
    /// on that).
    impl Arbitrary for f64 {
        type Strategy = UnitF64;
        fn arbitrary() -> Self::Strategy {
            UnitF64
        }
    }

    /// See the `f64` [`Arbitrary`] impl.
    #[derive(Debug, Clone, Copy)]
    pub struct UnitF64;

    impl Strategy for UnitF64 {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for a collection strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty collection size range");
            SizeRange { lo, hi_inclusive: hi }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling helpers (`Index`).

    /// An index drawn independently of any particular collection length;
    /// resolve it against a concrete length with [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// Map this abstract index onto `0..len`. Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod prelude {
    //! Single-glob import surface, mirroring `proptest::prelude`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Run property tests: each `fn name(arg in strategy, ...) { body }` item
/// becomes a test that samples its strategies for the configured number of
/// cases. Attributes on the item (including `#[test]` and doc comments)
/// are passed through, matching upstream usage.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($parm:pat in $strat:expr),+ $(,)? ) $body:block
    )* ) => { $(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let cases: u32 = config.cases;
            let mut accepted: u32 = 0;
            let mut attempt: u64 = 0;
            let max_attempts: u64 = (cases as u64) * 16 + 64;
            while accepted < cases {
                attempt += 1;
                assert!(
                    attempt <= max_attempts,
                    "proptest '{}': too many rejected cases ({} accepted of {})",
                    stringify!($name),
                    accepted,
                    cases
                );
                let mut __proptest_rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    attempt,
                );
                $(
                    let $parm = $crate::strategy::Strategy::sample(&($strat), &mut __proptest_rng);
                )+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match result {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed on case {} (attempt {}): {}",
                            stringify!($name),
                            accepted + 1,
                            attempt,
                            msg
                        );
                    }
                }
            }
        }
    )* };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left != right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(left != right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`: {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                left
            )));
        }
    }};
}

/// Discard the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        Dot,
        Line(u16),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 10.0f64..20.0,
            n in 3usize..7,
            b in any::<bool>(),
        ) {
            prop_assert!((10.0..20.0).contains(&x));
            prop_assert!((3..7).contains(&n));
            let _ = b;
        }

        #[test]
        fn vec_lengths_respect_size_range(
            v in crate::collection::vec(any::<u8>(), 2..=5),
        ) {
            prop_assert!((2..=5).contains(&v.len()));
        }

        #[test]
        fn oneof_and_map_produce_both_variants(
            s in crate::collection::vec(
                prop_oneof![Just(Shape::Dot), (1u16..9).prop_map(Shape::Line)],
                64..65,
            ),
        ) {
            prop_assert!(s.iter().any(|x| *x == Shape::Dot));
            prop_assert!(s.iter().any(|x| matches!(x, Shape::Line(_))));
            for x in &s {
                if let Shape::Line(n) = x {
                    prop_assert!((1..9).contains(n));
                }
            }
        }

        #[test]
        fn index_resolves_in_range(ix in any::<crate::sample::Index>(), len in 1usize..50) {
            prop_assert!(ix.index(len) < len);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_case("x::y", 3);
        let mut b = crate::test_runner::TestRng::for_case("x::y", 3);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
