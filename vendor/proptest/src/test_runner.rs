//! Test-runner plumbing: configuration, case errors, and the
//! deterministic per-case RNG.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Leaner than upstream's 256: every suite in this workspace sets an
        // explicit count, so the default only covers ad-hoc properties.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; sample a fresh one.
    Reject(String),
    /// The property failed.
    Fail(String),
}

impl TestCaseError {
    /// A failed case with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (assumed-away) case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic per-case RNG: FNV-1a over the test path, mixed with the
/// case number, then iterated with SplitMix64. The same test therefore
/// sees the same cases on every run and every machine.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `attempt` of the test identified by `path`.
    pub fn for_case(path: &str, attempt: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in path.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "TestRng::below(0)");
        self.next_u64() % n
    }
}
