//! Offline, API-compatible subset of `rand_chacha`.
//!
//! A genuine ChaCha stream-cipher core (the IETF variant: 32-byte key,
//! 64-bit block counter, zero nonce) driving `ChaCha8Rng` / `ChaCha12Rng` /
//! `ChaCha20Rng`. Deterministic for a given seed, `Clone`-able, and of
//! high enough statistical quality for the Box–Muller noise synthesis and
//! Monte-Carlo sweeps in the workspace. The exact output stream is not
//! guaranteed to match upstream `rand_chacha` word for word; nothing in
//! the workspace depends on cross-crate golden values, only on same-seed
//! reproducibility, which this provides unconditionally.

use rand::{RngCore, SeedableRng};

#[derive(Debug, Clone)]
struct ChaChaCore<const ROUNDS: usize> {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14); nonce words are zero.
    counter: u64,
    /// Buffered keystream block.
    buf: [u32; 16],
    /// Next unread word index in `buf`; 16 means "refill".
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const ROUNDS: usize> ChaChaCore<ROUNDS> {
    fn new(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaChaCore {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }

    fn refill(&mut self) {
        const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14], state[15]: zero nonce.
        let input = state;
        for _ in 0..ROUNDS / 2 {
            // Column rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(&input) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    fn next_word(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:literal, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name(ChaChaCore<$rounds>);

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.0.next_word()
            }
            fn next_u64(&mut self) -> u64 {
                let lo = self.0.next_word() as u64;
                let hi = self.0.next_word() as u64;
                (hi << 32) | lo
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];
            fn from_seed(seed: Self::Seed) -> Self {
                $name(ChaChaCore::new(seed))
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 8, "ChaCha with 8 rounds: the workspace's standard seeded RNG.");
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn output_looks_uniform() {
        // Mean of u32 samples should be near 2^31 with plenty of margin.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_u32() as f64).sum::<f64>() / n as f64;
        let expected = (u32::MAX as f64) / 2.0;
        assert!((mean - expected).abs() < expected * 0.01, "mean={mean}");
        // Bit balance on the low bit.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones = (0..n).filter(|_| rng.next_u32() & 1 == 1).count();
        assert!((ones as f64 - n as f64 / 2.0).abs() < n as f64 * 0.01);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
