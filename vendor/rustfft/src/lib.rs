//! Offline, API-compatible subset of the `rustfft` crate.
//!
//! Implements the `FftPlanner::new().plan_fft_forward(n)/.plan_fft_inverse(n)`
//! → `.process(&mut [Complex64])` surface the workspace uses. Power-of-two
//! lengths run an iterative radix-2 Cooley–Tukey; every other length runs
//! Bluestein's chirp-z algorithm on top of it, so — like real rustfft —
//! **all sizes are supported**. Matching rustfft semantics, neither
//! direction normalises: callers scale the inverse by `1/N` themselves.
//!
//! Like real rustfft, **planning is where the setup cost lives**: a plan
//! precomputes its bit-reversal permutation, per-stage twiddle tables and
//! (for Bluestein sizes) the chirp sequence and the transformed chirp
//! filter, so `process` does no trigonometry at all. Callers that reuse
//! plans (see `pab_dsp::plan::PlanCache`) amortise that setup across
//! calls; the planner itself also shares radix-2 tables between plans of
//! equal length.

pub use num_complex;
use num_complex::Complex64;
use std::collections::HashMap;
use std::f64::consts::PI;
use std::sync::Arc;

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FftDirection {
    /// Forward DFT (negative-exponent convention).
    Forward,
    /// Inverse DFT, unnormalised.
    Inverse,
}

/// A planned transform of a fixed length, mirroring `rustfft::Fft`.
pub trait Fft: Send + Sync {
    /// Transform `buffer` in place. `buffer.len()` must equal [`Fft::len`].
    fn process(&self, buffer: &mut [Complex64]);
    /// The FFT length this plan was built for.
    fn len(&self) -> usize;
    /// True for zero-length plans (never produced by the planner).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Precomputed radix-2 machinery for one power-of-two length: the
/// bit-reversal swap list and the forward twiddle factors of every
/// butterfly stage (the inverse pass conjugates on the fly).
struct Radix2Tables {
    n: usize,
    /// `(i, j)` pairs with `i < j` to swap during bit-reversal.
    swaps: Vec<(u32, u32)>,
    /// Stage `s` (1-based) uses `twiddles[s-1]`, a table of `2^(s-1)`
    /// forward factors `exp(-iπt/half)`.
    twiddles: Vec<Vec<Complex64>>,
}

impl Radix2Tables {
    fn new(n: usize) -> Self {
        debug_assert!(n.is_power_of_two() && n >= 2);
        let levels = n.trailing_zeros();
        let mut swaps = Vec::new();
        let mut j = 0usize;
        for i in 0..n {
            if i < j {
                swaps.push((i as u32, j as u32));
            }
            let mut mask = n >> 1;
            while j & mask != 0 {
                j &= !mask;
                mask >>= 1;
            }
            j |= mask;
        }
        let twiddles = (1..=levels)
            .map(|s| {
                let half = 1usize << (s - 1);
                (0..half)
                    .map(|t| Complex64::from_polar(1.0, -PI * t as f64 / half as f64))
                    .collect()
            })
            .collect();
        Radix2Tables { n, swaps, twiddles }
    }

    fn process(&self, buf: &mut [Complex64], direction: FftDirection) {
        debug_assert_eq!(buf.len(), self.n);
        for &(i, j) in &self.swaps {
            buf.swap(i as usize, j as usize);
        }
        let conj = direction == FftDirection::Inverse;
        for stage in &self.twiddles {
            let half = stage.len();
            let m = half << 1;
            let mut k = 0;
            while k < self.n {
                for (t, &tw) in stage.iter().enumerate() {
                    let w = if conj { tw.conj() } else { tw };
                    let u = buf[k + t];
                    let v = buf[k + t + half] * w;
                    buf[k + t] = u + v;
                    buf[k + t + half] = u - v;
                }
                k += m;
            }
        }
    }
}

/// Per-plan kernel: what `process` executes.
enum Kernel {
    /// Lengths 0 and 1 are identity transforms.
    Identity,
    Radix2(Arc<Radix2Tables>),
    /// Bluestein chirp-z for non-power-of-two lengths: a length-`n` DFT
    /// as a circular convolution of length `m = next_pow2(2n-1)`.
    Bluestein {
        /// `chirp[k] = exp(sign·iπk²/n)` for this plan's direction.
        chirp: Vec<Complex64>,
        /// Forward FFT of the chirp filter `b`, scaled by `1/m` so the
        /// inverse pass needs no extra normalisation loop.
        b_fft: Vec<Complex64>,
        tables: Arc<Radix2Tables>,
    },
}

struct PlannedFft {
    len: usize,
    direction: FftDirection,
    kernel: Kernel,
}

impl Fft for PlannedFft {
    fn process(&self, buffer: &mut [Complex64]) {
        assert_eq!(
            buffer.len(),
            self.len,
            "buffer length {} does not match planned FFT length {}",
            buffer.len(),
            self.len
        );
        match &self.kernel {
            Kernel::Identity => {}
            Kernel::Radix2(tables) => tables.process(buffer, self.direction),
            Kernel::Bluestein {
                chirp,
                b_fft,
                tables,
            } => {
                let n = self.len;
                let m = tables.n;
                let mut a = vec![Complex64::new(0.0, 0.0); m];
                for k in 0..n {
                    a[k] = buffer[k] * chirp[k];
                }
                tables.process(&mut a, FftDirection::Forward);
                for (x, y) in a.iter_mut().zip(b_fft) {
                    *x *= *y;
                }
                tables.process(&mut a, FftDirection::Inverse);
                for (k, out) in buffer.iter_mut().enumerate() {
                    *out = a[k] * chirp[k];
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Plans FFTs of any size, mirroring `rustfft::FftPlanner`. Radix-2
/// tables are cached per length and shared across the plans this planner
/// hands out.
pub struct FftPlanner {
    tables: HashMap<usize, Arc<Radix2Tables>>,
}

impl FftPlanner {
    /// Create a planner.
    pub fn new() -> Self {
        FftPlanner {
            tables: HashMap::new(),
        }
    }

    fn radix2_tables(&mut self, n: usize) -> Arc<Radix2Tables> {
        self.tables
            .entry(n)
            .or_insert_with(|| Arc::new(Radix2Tables::new(n)))
            .clone()
    }

    /// Plan a forward FFT of length `len`.
    pub fn plan_fft_forward(&mut self, len: usize) -> Arc<dyn Fft> {
        self.plan_fft(len, FftDirection::Forward)
    }

    /// Plan an unnormalised inverse FFT of length `len`.
    pub fn plan_fft_inverse(&mut self, len: usize) -> Arc<dyn Fft> {
        self.plan_fft(len, FftDirection::Inverse)
    }

    /// Plan a transform with an explicit direction.
    pub fn plan_fft(&mut self, len: usize, direction: FftDirection) -> Arc<dyn Fft> {
        let kernel = if len <= 1 {
            Kernel::Identity
        } else if len.is_power_of_two() {
            Kernel::Radix2(self.radix2_tables(len))
        } else {
            let n = len;
            let sign = match direction {
                FftDirection::Forward => -1.0,
                FftDirection::Inverse => 1.0,
            };
            // chirp[k] = exp(sign·iπk²/n); reduce k² mod 2n to keep the
            // phase argument small and accurate for large k.
            let two_n = 2 * n as u64;
            let chirp: Vec<Complex64> = (0..n as u64)
                .map(|k| {
                    let k2 = (k.wrapping_mul(k)) % two_n;
                    Complex64::from_polar(1.0, sign * PI * k2 as f64 / n as f64)
                })
                .collect();
            let m = (2 * n - 1).next_power_of_two();
            let tables = self.radix2_tables(m);
            let mut b = vec![Complex64::new(0.0, 0.0); m];
            b[0] = chirp[0].conj();
            for k in 1..n {
                let c = chirp[k].conj();
                b[k] = c;
                b[m - k] = c;
            }
            tables.process(&mut b, FftDirection::Forward);
            // Fold the 1/m convolution normalisation into the filter.
            let scale = 1.0 / m as f64;
            for x in &mut b {
                *x *= scale;
            }
            Kernel::Bluestein {
                chirp,
                b_fft: b,
                tables,
            }
        };
        Arc::new(PlannedFft {
            len,
            direction,
            kernel,
        })
    }
}

impl Default for FftPlanner {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex64], sign: f64) -> Vec<Complex64> {
        let n = x.len();
        (0..n)
            .map(|k| {
                (0..n)
                    .map(|t| {
                        x[t] * Complex64::from_polar(
                            1.0,
                            sign * 2.0 * PI * (k * t % n) as f64 / n as f64,
                        )
                    })
                    .sum()
            })
            .collect()
    }

    fn test_signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new(((i * 7 + 3) % 11) as f64 - 5.0, ((i * 5) % 13) as f64 / 3.0))
            .collect()
    }

    #[test]
    fn matches_naive_dft_power_of_two() {
        for &n in &[2usize, 8, 64, 256] {
            let x = test_signal(n);
            let mut y = x.clone();
            FftPlanner::new().plan_fft_forward(n).process(&mut y);
            let want = naive_dft(&x, -1.0);
            for (a, b) in y.iter().zip(&want) {
                assert!((*a - *b).norm() < 1e-6 * (n as f64), "n={n}");
            }
        }
    }

    #[test]
    fn matches_naive_dft_arbitrary_sizes() {
        for &n in &[3usize, 5, 12, 100, 243, 1000] {
            let x = test_signal(n);
            let mut y = x.clone();
            FftPlanner::new().plan_fft_forward(n).process(&mut y);
            let want = naive_dft(&x, -1.0);
            for (a, b) in y.iter().zip(&want) {
                assert!((*a - *b).norm() < 1e-6 * (n as f64), "n={n}");
            }
        }
    }

    #[test]
    fn inverse_matches_naive_dft_arbitrary_sizes() {
        for &n in &[3usize, 12, 100] {
            let x = test_signal(n);
            let mut y = x.clone();
            FftPlanner::new().plan_fft_inverse(n).process(&mut y);
            let want = naive_dft(&x, 1.0);
            for (a, b) in y.iter().zip(&want) {
                assert!((*a - *b).norm() < 1e-6 * (n as f64), "n={n}");
            }
        }
    }

    #[test]
    fn forward_then_inverse_recovers_input() {
        for &n in &[16usize, 48, 96_000 / 64] {
            let x = test_signal(n);
            let mut y = x.clone();
            let mut planner = FftPlanner::new();
            planner.plan_fft_forward(n).process(&mut y);
            planner.plan_fft_inverse(n).process(&mut y);
            for (a, b) in y.iter().zip(&x) {
                let scaled = *a * (1.0 / n as f64);
                assert!((scaled - *b).norm() < 1e-8, "n={n}");
            }
        }
    }

    #[test]
    fn plans_are_reusable_and_shareable() {
        let mut planner = FftPlanner::new();
        let plan = planner.plan_fft_forward(64);
        let x = test_signal(64);
        let mut y1 = x.clone();
        let mut y2 = x.clone();
        plan.process(&mut y1);
        plan.process(&mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        assert_eq!(plan.len(), 64);
        assert!(!plan.is_empty());
    }
}
