//! Offline, API-compatible subset of the `rustfft` crate.
//!
//! Implements the `FftPlanner::new().plan_fft_forward(n)/.plan_fft_inverse(n)`
//! → `.process(&mut [Complex64])` surface the workspace uses. Power-of-two
//! lengths run an iterative radix-2 Cooley–Tukey; every other length runs
//! Bluestein's chirp-z algorithm on top of it, so — like real rustfft —
//! **all sizes are supported**. Matching rustfft semantics, neither
//! direction normalises: callers scale the inverse by `1/N` themselves.

pub use num_complex;
use num_complex::Complex64;
use std::f64::consts::PI;
use std::sync::Arc;

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FftDirection {
    /// Forward DFT (negative-exponent convention).
    Forward,
    /// Inverse DFT, unnormalised.
    Inverse,
}

/// A planned transform of a fixed length, mirroring `rustfft::Fft`.
pub trait Fft: Send + Sync {
    /// Transform `buffer` in place. `buffer.len()` must equal [`Fft::len`].
    fn process(&self, buffer: &mut [Complex64]);
    /// The FFT length this plan was built for.
    fn len(&self) -> usize;
    /// True for zero-length plans (never produced by the planner).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct PlannedFft {
    len: usize,
    direction: FftDirection,
}

impl Fft for PlannedFft {
    fn process(&self, buffer: &mut [Complex64]) {
        assert_eq!(
            buffer.len(),
            self.len,
            "buffer length {} does not match planned FFT length {}",
            buffer.len(),
            self.len
        );
        dft_in_place(buffer, self.direction);
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Plans FFTs of any size, mirroring `rustfft::FftPlanner`.
pub struct FftPlanner {
    _private: (),
}

impl FftPlanner {
    /// Create a planner.
    pub fn new() -> Self {
        FftPlanner { _private: () }
    }

    /// Plan a forward FFT of length `len`.
    pub fn plan_fft_forward(&mut self, len: usize) -> Arc<dyn Fft> {
        Arc::new(PlannedFft {
            len,
            direction: FftDirection::Forward,
        })
    }

    /// Plan an unnormalised inverse FFT of length `len`.
    pub fn plan_fft_inverse(&mut self, len: usize) -> Arc<dyn Fft> {
        Arc::new(PlannedFft {
            len,
            direction: FftDirection::Inverse,
        })
    }

    /// Plan a transform with an explicit direction.
    pub fn plan_fft(&mut self, len: usize, direction: FftDirection) -> Arc<dyn Fft> {
        Arc::new(PlannedFft { len, direction })
    }
}

impl Default for FftPlanner {
    fn default() -> Self {
        Self::new()
    }
}

fn dft_in_place(buf: &mut [Complex64], direction: FftDirection) {
    let n = buf.len();
    if n <= 1 {
        return;
    }
    if n.is_power_of_two() {
        radix2_in_place(buf, direction);
    } else {
        bluestein(buf, direction);
    }
}

/// Iterative radix-2 Cooley–Tukey with bit-reversal permutation.
fn radix2_in_place(buf: &mut [Complex64], direction: FftDirection) {
    let n = buf.len();
    debug_assert!(n.is_power_of_two());
    let levels = n.trailing_zeros();

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 0..n {
        if i < j {
            buf.swap(i, j);
        }
        let mut mask = n >> 1;
        while j & mask != 0 {
            j &= !mask;
            mask >>= 1;
        }
        j |= mask;
    }

    let sign = match direction {
        FftDirection::Forward => -1.0,
        FftDirection::Inverse => 1.0,
    };
    for s in 1..=levels {
        let m = 1usize << s;
        let half = m >> 1;
        let w_m = Complex64::from_polar(1.0, sign * PI / half as f64);
        let mut k = 0;
        while k < n {
            let mut w = Complex64::new(1.0, 0.0);
            for t in 0..half {
                let u = buf[k + t];
                let v = buf[k + t + half] * w;
                buf[k + t] = u + v;
                buf[k + t + half] = u - v;
                w = w * w_m;
            }
            k += m;
        }
    }
}

/// Bluestein chirp-z transform: express a length-`n` DFT as a circular
/// convolution of length `m ≥ 2n − 1` (power of two), computed by radix-2.
fn bluestein(buf: &mut [Complex64], direction: FftDirection) {
    let n = buf.len();
    let sign = match direction {
        FftDirection::Forward => -1.0,
        FftDirection::Inverse => 1.0,
    };
    // chirp[k] = exp(sign * i * pi * k^2 / n); reduce k^2 mod 2n to keep
    // the phase argument small and accurate for large k.
    let two_n = 2 * n as u64;
    let chirp: Vec<Complex64> = (0..n as u64)
        .map(|k| {
            let k2 = (k.wrapping_mul(k)) % two_n;
            Complex64::from_polar(1.0, sign * PI * k2 as f64 / n as f64)
        })
        .collect();

    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![Complex64::new(0.0, 0.0); m];
    for k in 0..n {
        a[k] = buf[k] * chirp[k];
    }
    let mut b = vec![Complex64::new(0.0, 0.0); m];
    b[0] = chirp[0].conj();
    for k in 1..n {
        let c = chirp[k].conj();
        b[k] = c;
        b[m - k] = c;
    }

    radix2_in_place(&mut a, FftDirection::Forward);
    radix2_in_place(&mut b, FftDirection::Forward);
    for (x, y) in a.iter_mut().zip(&b) {
        *x = *x * *y;
    }
    radix2_in_place(&mut a, FftDirection::Inverse);
    let scale = 1.0 / m as f64;
    for (k, out) in buf.iter_mut().enumerate() {
        *out = a[k] * scale * chirp[k];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex64], sign: f64) -> Vec<Complex64> {
        let n = x.len();
        (0..n)
            .map(|k| {
                (0..n)
                    .map(|t| {
                        x[t] * Complex64::from_polar(
                            1.0,
                            sign * 2.0 * PI * (k * t % n) as f64 / n as f64,
                        )
                    })
                    .sum()
            })
            .collect()
    }

    fn test_signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new(((i * 7 + 3) % 11) as f64 - 5.0, ((i * 5) % 13) as f64 / 3.0))
            .collect()
    }

    #[test]
    fn matches_naive_dft_power_of_two() {
        for &n in &[2usize, 8, 64, 256] {
            let x = test_signal(n);
            let mut y = x.clone();
            FftPlanner::new().plan_fft_forward(n).process(&mut y);
            let want = naive_dft(&x, -1.0);
            for (a, b) in y.iter().zip(&want) {
                assert!((*a - *b).norm() < 1e-6 * (n as f64), "n={n}");
            }
        }
    }

    #[test]
    fn matches_naive_dft_arbitrary_sizes() {
        for &n in &[3usize, 5, 12, 100, 243, 1000] {
            let x = test_signal(n);
            let mut y = x.clone();
            FftPlanner::new().plan_fft_forward(n).process(&mut y);
            let want = naive_dft(&x, -1.0);
            for (a, b) in y.iter().zip(&want) {
                assert!((*a - *b).norm() < 1e-6 * (n as f64), "n={n}");
            }
        }
    }

    #[test]
    fn forward_then_inverse_recovers_input() {
        for &n in &[16usize, 48, 96_000 / 64] {
            let x = test_signal(n);
            let mut y = x.clone();
            let mut planner = FftPlanner::new();
            planner.plan_fft_forward(n).process(&mut y);
            planner.plan_fft_inverse(n).process(&mut y);
            for (a, b) in y.iter().zip(&x) {
                let scaled = *a * (1.0 / n as f64);
                assert!((scaled - *b).norm() < 1e-8, "n={n}");
            }
        }
    }
}
