//! Offline, API-compatible subset of the `rayon` data-parallelism crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! exactly the surface the PAB workspace uses — `Vec::into_par_iter()`
//! followed by `.map(..).collect::<Vec<_>>()`, plus
//! [`current_num_threads`] — on plain `std::thread::scope`. Two contracts
//! the real rayon also honours, and which the deterministic sweep engine
//! (`pab-experiments::sweep`) relies on:
//!
//! * **Order stability** — `collect()` returns results in the order of the
//!   input items, no matter how work was scheduled across threads.
//! * **Pure fan-out** — the mapping closure runs exactly once per item.
//!
//! Work is split into contiguous chunks, one scoped thread per chunk, and
//! the chunk outputs are stitched back together by chunk index. There is
//! no work stealing; for the coarse-grained simulation sweeps this shim
//! exists for (hundreds of milliseconds to seconds per item), chunk
//! imbalance is dwarfed by per-item cost.

use std::num::NonZeroUsize;
use std::sync::Mutex;

/// Number of worker threads a parallel iterator will fan out across
/// (the machine's available parallelism; 1 if that cannot be queried).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// The traits a caller needs in scope, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::IntoParallelIterator;
}

pub mod iter {
    //! Parallel-iterator types: `Vec<T> -> VecParIter<T> -> VecParMap<T, F>`.

    use super::execute_chunked;

    /// Conversion into a parallel iterator, mirroring
    /// `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// Item produced by the iterator.
        type Item: Send;
        /// The concrete parallel iterator.
        type Iter;
        /// Convert `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = VecParIter<T>;
        fn into_par_iter(self) -> VecParIter<T> {
            VecParIter { items: self }
        }
    }

    /// A parallel iterator over an owned `Vec`.
    #[derive(Debug)]
    pub struct VecParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> VecParIter<T> {
        /// Lazily attach a mapping operation; nothing runs until
        /// [`VecParMap::collect`].
        pub fn map<R, F>(self, op: F) -> VecParMap<T, F>
        where
            R: Send,
            F: Fn(T) -> R + Sync,
        {
            VecParMap {
                items: self.items,
                op,
            }
        }
    }

    /// A mapped parallel iterator; [`collect`](VecParMap::collect) runs the
    /// fan-out.
    #[derive(Debug)]
    pub struct VecParMap<T, F> {
        items: Vec<T>,
        op: F,
    }

    impl<T, F> VecParMap<T, F> {
        /// Run the map across threads and gather results **in input
        /// order**.
        pub fn collect<C, R>(self) -> C
        where
            T: Send,
            R: Send,
            F: Fn(T) -> R + Sync,
            C: From<Vec<R>>,
        {
            C::from(execute_chunked(self.items, &self.op))
        }
    }
}

/// Map `op` over `items` on up to [`current_num_threads`] scoped threads,
/// returning outputs in input order.
fn execute_chunked<T, R, F>(items: Vec<T>, op: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(op).collect();
    }
    let chunk_len = n.div_ceil(threads);
    let mut chunks: Vec<(usize, Vec<T>)> = Vec::with_capacity(threads);
    let mut rest = items;
    let mut idx = 0usize;
    while !rest.is_empty() {
        let tail = rest.split_off(chunk_len.min(rest.len()));
        chunks.push((idx, rest));
        rest = tail;
        idx += 1;
    }
    let gathered: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(chunks.len()));
    std::thread::scope(|scope| {
        for (ci, chunk) in chunks {
            let gathered = &gathered;
            scope.spawn(move || {
                let out: Vec<R> = chunk.into_iter().map(op).collect();
                gathered
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push((ci, out));
            });
        }
    });
    let mut parts = gathered
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    parts.sort_by_key(|&(ci, _)| ci);
    parts.into_iter().flat_map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn map_collect_preserves_input_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.clone().into_par_iter().map(|x| x * 3 + 1).collect();
        let expected: Vec<u64> = input.into_iter().map(|x| x * 3 + 1).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn runs_once_per_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let out: Vec<usize> = (0..97usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| {
                calls.fetch_add(1, Ordering::SeqCst);
                x
            })
            .collect();
        assert_eq!(out.len(), 97);
        assert_eq!(calls.load(Ordering::SeqCst), 97);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<i32> = Vec::new();
        let out: Vec<i32> = empty.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let one: Vec<i32> = vec![7].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
