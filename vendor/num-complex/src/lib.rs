//! Offline, API-compatible subset of the `num-complex` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the slice of `num_complex` it actually uses: `Complex<f64>` (as
//! `Complex64`) with Cartesian/polar constructors, the usual arithmetic
//! operator impls (including mixed `f64` operands), and the handful of
//! transcendental helpers the DSP and circuit models call.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number in Cartesian form.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex<T> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

/// Alias for a double-precision complex number, matching `num_complex`.
pub type Complex64 = Complex<f64>;
/// Alias for a single-precision complex number, matching `num_complex`.
pub type Complex32 = Complex<f32>;

impl<T> Complex<T> {
    /// Create a new complex number `re + im·i`.
    pub const fn new(re: T, im: T) -> Self {
        Complex { re, im }
    }
}

impl Complex<f64> {
    /// The imaginary unit.
    pub const I: Complex64 = Complex::new(0.0, 1.0);

    /// The imaginary unit (method form, as in `num_complex`).
    pub fn i() -> Self {
        Self::I
    }

    /// Construct from polar form `r·e^{iθ}`.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Squared magnitude `re² + im²`.
    pub fn norm_sqr(&self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude (Euclidean norm). Uses `hypot` for overflow safety.
    pub fn norm(&self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in radians.
    pub fn arg(&self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(&self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Multiplicative inverse `1/z`.
    pub fn inv(&self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    pub fn exp(&self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Principal natural logarithm.
    pub fn ln(&self) -> Self {
        Complex::new(self.norm().ln(), self.arg())
    }

    /// Principal square root.
    pub fn sqrt(&self) -> Self {
        Complex::from_polar(self.norm().sqrt(), self.arg() / 2.0)
    }

    /// Integer power by repeated squaring on polar form.
    pub fn powi(&self, n: i32) -> Self {
        Complex::from_polar(self.norm().powi(n), self.arg() * n as f64)
    }

    /// Raise to a real power.
    pub fn powf(&self, p: f64) -> Self {
        Complex::from_polar(self.norm().powf(p), self.arg() * p)
    }

    /// Scale by a real factor.
    pub fn scale(&self, t: f64) -> Self {
        Complex::new(self.re * t, self.im * t)
    }

    /// Divide by a real factor.
    pub fn unscale(&self, t: f64) -> Self {
        Complex::new(self.re / t, self.im / t)
    }

    /// True when both parts are finite.
    pub fn is_finite(&self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Debug for Complex<f64> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Complex {{ re: {:?}, im: {:?} }}", self.re, self.im)
    }
}

impl fmt::Display for Complex<f64> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im < 0.0 {
            write!(f, "{}-{}i", self.re, -self.im)
        } else {
            write!(f, "{}+{}i", self.re, self.im)
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    fn div(self, rhs: Complex64) -> Complex64 {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex::new(-self.re, -self.im)
    }
}

impl Add<f64> for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: f64) -> Complex64 {
        Complex::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: f64) -> Complex64 {
        Complex::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: f64) -> Complex64 {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    fn div(self, rhs: f64) -> Complex64 {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Add<Complex64> for f64 {
    type Output = Complex64;
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex::new(self + rhs.re, rhs.im)
    }
}

impl Sub<Complex64> for f64 {
    type Output = Complex64;
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex::new(self - rhs.re, -rhs.im)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex::new(self * rhs.re, self * rhs.im)
    }
}

impl Div<Complex64> for f64 {
    type Output = Complex64;
    fn div(self, rhs: Complex64) -> Complex64 {
        Complex::new(self, 0.0) / rhs
    }
}

macro_rules! forward_ref_binop {
    ($($trait:ident :: $method:ident),+ $(,)?) => {$(
        impl $trait<Complex64> for &Complex64 {
            type Output = Complex64;
            fn $method(self, rhs: Complex64) -> Complex64 {
                $trait::$method(*self, rhs)
            }
        }
        impl $trait<&Complex64> for Complex64 {
            type Output = Complex64;
            fn $method(self, rhs: &Complex64) -> Complex64 {
                $trait::$method(self, *rhs)
            }
        }
        impl $trait<&Complex64> for &Complex64 {
            type Output = Complex64;
            fn $method(self, rhs: &Complex64) -> Complex64 {
                $trait::$method(*self, *rhs)
            }
        }
        impl $trait<f64> for &Complex64 {
            type Output = Complex64;
            fn $method(self, rhs: f64) -> Complex64 {
                $trait::$method(*self, rhs)
            }
        }
    )+};
}
forward_ref_binop!(Add::add, Sub::sub, Mul::mul, Div::div);

impl Neg for &Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        -*self
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Complex64) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    fn sub_assign(&mut self, rhs: Complex64) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl AddAssign<f64> for Complex64 {
    fn add_assign(&mut self, rhs: f64) {
        self.re += rhs;
    }
}

impl MulAssign<f64> for Complex64 {
    fn mul_assign(&mut self, rhs: f64) {
        self.re *= rhs;
        self.im *= rhs;
    }
}

impl DivAssign<f64> for Complex64 {
    fn div_assign(&mut self, rhs: f64) {
        self.re /= rhs;
        self.im /= rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex::new(0.0, 0.0), |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex64> for Complex64 {
    fn sum<I: Iterator<Item = &'a Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex::new(0.0, 0.0), |a, b| a + *b)
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(3.0, -4.0);
        let b = Complex64::new(-1.0, 2.0);
        assert_eq!(a + b - b, a);
        let q = a / b;
        assert!(((q * b) - a).norm() < 1e-12);
        assert_eq!(a.norm(), 5.0);
        assert!((a * a.inv() - Complex64::new(1.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(2.0, 0.7);
        assert!((z.norm() - 2.0).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn exp_of_i_pi_is_minus_one() {
        let z = Complex64::new(0.0, std::f64::consts::PI).exp();
        assert!((z - Complex64::new(-1.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn mixed_real_ops() {
        let z = Complex64::new(1.0, 1.0);
        assert_eq!(2.0 * z, Complex64::new(2.0, 2.0));
        assert_eq!(z * 2.0, Complex64::new(2.0, 2.0));
        let mut w = z;
        w *= 0.5;
        assert_eq!(w, Complex64::new(0.5, 0.5));
    }
}
