//! Offline, API-compatible subset of `rand` 0.8.
//!
//! Provides the `RngCore` / `Rng` / `SeedableRng` traits with the methods
//! the workspace calls (`gen`, `gen_range`, `gen_bool`, `fill_bytes`,
//! `seed_from_u64`). Deterministic generators (`rand_chacha`) implement
//! `RngCore` and inherit the rest. There is deliberately no `thread_rng`:
//! the PAB simulation is seed-driven by construction, and the `pab-lint`
//! `no-wallclock-no-threadrng` lint forbids ambient entropy in library code.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that `Rng::gen` can produce uniformly.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),+ $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )+};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
                   usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   i64 => next_u64, isize => next_u64);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from this range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty f64 range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )+};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod distributions {
    //! Distribution trait, mirroring `rand::distributions`.

    /// A distribution that can produce values of `T` from an RNG.
    pub trait Distribution<T> {
        /// Draw one value from `rng`.
        fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform value of type `T` (full integer range, `[0,1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }

    /// Draw one value from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable deterministic generators, as in `rand` 0.8.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it with SplitMix64, matching
    /// the upstream default-method behaviour (deterministic, well mixed).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod prelude {
    //! Commonly used traits, mirroring `rand::prelude`.
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountRng(u64);
    impl RngCore for CountRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so the stream looks uniform enough for the tests.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = CountRng(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n: usize = rng.gen_range(5usize..10);
            assert!((5..10).contains(&n));
            let m: u8 = rng.gen_range(0u8..=255);
            let _ = m;
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = CountRng(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = CountRng(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
